// Shared infrastructure for the reproduction benches: model caching through
// DLib, standard scenario construction, and environment knobs.
//
//   DQN_BENCH_SCALE  — multiplies horizons & training sizes (default 1.0;
//                      raise for tighter statistics, lower for quick runs)
//   DQN_MODEL_DIR    — PTM cache directory (default ./dqn_models)
//   DQN_PTM_ARCH     — "mlp" (default) or "attention"
//   DQN_BENCH_JSON   — when set, every engine/DES/DUtil phase the bench runs
//                      is profiled through one shared obs::sink and the
//                      registry snapshot is dumped as JSON at exit
//                      ("1" or "-" → stdout, anything else → that file path)
//
// Each bench binary prints the rows of its paper table/figure and exits;
// PTMs are trained on first use and cached on disk, so re-runs are fast.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/dlib.hpp"
#include "core/dutil.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "des/estimator_factory.hpp"
#include "des/network.hpp"
#include "obs/sink.hpp"
#include "obs/telemetry/resource_stats.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace dqn::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("DQN_BENCH_SCALE"); env != nullptr) {
    const double scale = std::atof(env);
    if (scale > 0) return scale;
  }
  return 1.0;
}

// The process-wide bench sink, or nullptr when DQN_BENCH_JSON is unset.
// Every helper below threads it through the engine/DES/DUtil configs, so a
// bench binary needs no code of its own to become profilable. The snapshot
// is dumped once, at exit, after all tables have printed.
inline obs::sink* bench_sink() {
  static obs::sink* instance = [] {
    const char* env = std::getenv("DQN_BENCH_JSON");
    if (env == nullptr || *env == '\0') return static_cast<obs::sink*>(nullptr);
    static obs::sink sink;
    static std::string destination{env};
    std::atexit([] {
      // Stamp end-of-process resource usage (peak RSS, CPU split, context
      // switches) into the snapshot so every profiled bench records what it
      // cost — run_all_benches.sh lifts peak_rss_bytes into
      // BENCH_results.json from these gauges.
      obs::telemetry::publish_resource_gauges(sink);
      const std::string doc = sink.to_json();
      if (destination == "1" || destination == "-") {
        std::printf("%s\n", doc.c_str());
        return;
      }
      if (std::FILE* f = std::fopen(destination.c_str(), "w"); f != nullptr) {
        std::fprintf(f, "%s\n", doc.c_str());
        std::fclose(f);
        std::fprintf(stderr, "[obs] wrote profile snapshot to %s\n",
                     destination.c_str());
      } else {
        std::fprintf(stderr, "[obs] cannot open %s for writing\n",
                     destination.c_str());
      }
    });
    return &sink;
  }();
  return instance;
}

inline core::ptm_arch bench_arch() {
  if (const char* env = std::getenv("DQN_PTM_ARCH"); env != nullptr) {
    if (std::string{env} == "attention") return core::ptm_arch::attention;
  }
  return core::ptm_arch::mlp;
}

// The standard DUtil configuration the network-scale benches train with:
// a K-port switch over the full §5.2 mix (schedulers, loads 0.1-0.8,
// MAP/Poisson/On-Off arrivals). Counts scale with DQN_BENCH_SCALE.
inline core::dutil_config standard_dutil(std::size_t ports,
                                         std::size_t time_steps = 12,
                                         double bandwidth_bps = 10e9) {
  core::dutil_config cfg;
  cfg.ports = ports;
  cfg.bandwidth_bps = bandwidth_bps;
  cfg.streams = static_cast<std::size_t>(288 * bench_scale());
  cfg.packets_per_stream = 600;
  cfg.ptm.arch = bench_arch();
  cfg.ptm.time_steps = time_steps;
  cfg.ptm.mlp_hidden = {96, 48};
  cfg.ptm.lstm_hidden = {24, 12};
  cfg.ptm.epochs = static_cast<std::size_t>(22 * bench_scale()) + 2;
  cfg.seed = 20220822;  // SIGCOMM'22 conference date
  cfg.sink = bench_sink();
  return cfg;
}

// Train-or-load a PTM through DLib. The key encodes everything that shapes
// the model so changed configurations retrain rather than collide.
inline std::shared_ptr<const core::ptm_model> cached_model(
    const core::dutil_config& cfg) {
  core::device_model_library lib;
  const std::string key =
      core::device_model_library::model_key(cfg.ptm.arch, cfg.ports, cfg.seed) +
      "_t" + std::to_string(cfg.ptm.time_steps) + "_n" +
      std::to_string(cfg.streams) + "_e" + std::to_string(cfg.ptm.epochs) +
      "_bw" + std::to_string(static_cast<long long>(cfg.bandwidth_bps / 1e6)) +
      "_f" + std::to_string(core::feature_count) + "_r3";
  auto model = lib.fetch_or_train(key, [&] {
    std::printf("[dutil] training PTM %s (this is cached in %s)...\n", key.c_str(),
                lib.directory().string().c_str());
    auto bundle = core::train_device_model(cfg);
    std::printf("[dutil] trained in %.1fs, final MSE %.5f\n",
                bundle.report.train_seconds, bundle.report.epoch_mse.back());
    return std::move(bundle.model);
  });
  return std::make_shared<const core::ptm_model>(std::move(model));
}

// The one shared PTM that drives every network-scale bench: an 8-port
// device model over the full scheduler/traffic mix at the bench link rate
// (§6.1: a trained K-port PTM serves any topology with node degree <= K).
inline std::shared_ptr<const core::ptm_model> network_model() {
  auto cfg = standard_dutil(8, 12, /*bandwidth_bps=*/1e9);
  return cached_model(cfg);
}

// A network-scale scenario: topology + routing + per-host ingress streams.
// The topology lives behind a unique_ptr so the routing's back-pointer stays
// valid when the scenario itself is moved (e.g. into a vector).
struct scenario {
  std::unique_ptr<topo::topology> topo_ptr;
  std::unique_ptr<topo::routing> routes;
  std::vector<traffic::flow_spec> flows;
  std::vector<traffic::packet_stream> streams;
  std::vector<double> flow_rates;
  double horizon = 0;

  [[nodiscard]] const topo::topology& topo() const { return *topo_ptr; }
};

// The network-scale accuracy benches run with 1 Gbps links and traffic
// scaled down 10x relative to the paper's 10 Gbps: a pure time rescaling of
// the same queueing processes that keeps CPU packet counts tractable
// (DESIGN.md §2).
inline constexpr double bench_link_bps = 1e9;

inline topo::link_params bench_links() {
  topo::link_params lp;
  lp.bandwidth_bps = bench_link_bps;
  return lp;
}

// Mean packet size of each traffic model's size distribution (bytes).
inline double mean_packet_size(traffic::traffic_model model) {
  return model == traffic::traffic_model::anarchy ? 380.0 : 712.0;
}

inline scenario make_scenario(topo::topology topo_in, traffic::traffic_model model,
                              double per_flow_rate, double horizon,
                              std::uint64_t seed, std::size_t classes = 1) {
  scenario s;
  s.topo_ptr = std::make_unique<topo::topology>(std::move(topo_in));
  s.routes = std::make_unique<topo::routing>(*s.topo_ptr);
  s.horizon = horizon;
  util::rng rng{seed};
  const std::size_t hosts = s.topo().hosts().size();
  s.flows = traffic::make_uniform_flows(hosts, classes, rng);
  traffic::tg_util_config tg;
  tg.model = model;
  tg.per_flow_rate = per_flow_rate;
  tg.seed = seed;
  auto generators = traffic::make_generators(s.flows, tg);
  s.streams = traffic::per_host_streams(generators, hosts, horizon, rng);
  for (const auto& gen : generators) s.flow_rates.push_back(gen.mean_rate());
  return s;
}

// Like make_scenario, but the per-flow rate is calibrated so the most loaded
// link in the network (flows routed per ECMP) carries `target_max_load` of
// its capacity — keeping every queue inside the PTM's trained load range and
// the network stable, exactly as the paper's experiments do. The per-flow
// rates live in scenario::flow_rates for the RouteNet feature derivation.
inline scenario make_scenario_load(topo::topology topo_in,
                                   traffic::traffic_model model,
                                   double target_max_load, double horizon,
                                   std::uint64_t seed, std::size_t classes = 1) {
  // Pass 1: route unit-rate flows to find the most loaded link.
  auto probe_topo = std::make_unique<topo::topology>(std::move(topo_in));
  topo::routing probe_routes{*probe_topo};
  util::rng rng{seed};
  const auto hosts = probe_topo->hosts();
  auto flows = traffic::make_uniform_flows(hosts.size(), classes, rng);
  std::vector<double> link_flows(probe_topo->link_count(), 0.0);
  for (const auto& flow : flows) {
    const auto src = hosts.at(static_cast<std::size_t>(flow.src_host));
    const auto dst = hosts.at(static_cast<std::size_t>(flow.dst_host));
    const auto path = probe_routes.flow_path(src, dst, flow.flow_id);
    for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
      const std::size_t port = probe_routes.egress_port(path[hop], dst, flow.flow_id);
      link_flows[probe_topo->peer_of(path[hop], port).link_index] += 1.0;
    }
  }
  double max_flows = 1.0;
  double min_bandwidth = probe_topo->link_at(0).bandwidth_bps;
  for (std::size_t l = 0; l < link_flows.size(); ++l) {
    max_flows = std::max(max_flows, link_flows[l]);
    min_bandwidth = std::min(min_bandwidth, probe_topo->link_at(l).bandwidth_bps);
  }
  const double per_flow_bps = target_max_load * min_bandwidth / max_flows;
  const double per_flow_rate = per_flow_bps / (8.0 * mean_packet_size(model));

  // Pass 2: build the actual scenario with the calibrated rate (same seed,
  // so the flow set is identical to the probe's).
  return make_scenario(std::move(*probe_topo), model, per_flow_rate, horizon,
                       seed, classes);
}

// Run the DES oracle and the DeepQueueNet engine on the same scenario and
// compare them with the §6 metrics.
struct scenario_result {
  des::run_result truth;
  des::run_result prediction;
  core::metric_comparison comparison;
  core::engine_stats engine_stats;
};

// The estimator_context both estimators of run_and_compare are built from —
// exposed so benches that need extra estimators (fluid rows, per-backend DQN
// runs) assemble them through the same factory path.
inline des::estimator_context compare_context(
    const scenario& s, std::shared_ptr<const core::ptm_model> ptm,
    const des::tm_config& tm, bool apply_sec = true, std::size_t partitions = 4,
    bool record_truth_hops = false) {
  des::estimator_context context;
  context.topo = &s.topo();
  context.routes = s.routes.get();
  context.des.tm = tm;
  context.des.record_hops = record_truth_hops;
  context.des.sink = bench_sink();
  context.ptm = std::move(ptm);
  context.scheduler.kind = tm.kind;
  context.scheduler.class_weights = tm.class_weights;
  context.scheduler.bandwidth_bps = bench_link_bps;
  context.engine.partitions = partitions;
  context.engine.apply_sec = apply_sec;
  context.engine.sink = bench_sink();
  context.flows = &s.flows;
  context.flow_rates_pps = &s.flow_rates;
  return context;
}

inline scenario_result run_and_compare(
    const scenario& s, std::shared_ptr<const core::ptm_model> ptm,
    const des::tm_config& tm, double bucket_seconds, bool apply_sec = true,
    std::size_t partitions = 4, bool record_truth_hops = false,
    const des::delay_policy* delay = nullptr) {
  const auto context = compare_context(s, std::move(ptm), tm, apply_sec,
                                       partitions, record_truth_hops);
  const auto oracle = des::make_estimator("des", context);
  const auto net = des::make_estimator("deepqueuenet", context);

  des::run_request request;
  request.host_streams = &s.streams;
  request.horizon = s.horizon;
  scenario_result result;
  result.truth = oracle->run(request);
  if (delay != nullptr) request.delay = *delay;
  result.prediction = net->run(request);
  // The engine_stats live on the concrete engine behind the contract; the
  // shared bench sink accumulates across runs, so read them directly.
  result.engine_stats = dynamic_cast<const core::dqn_network&>(*net).stats();
  result.comparison =
      core::compare_runs(result.truth, result.prediction, bucket_seconds, 6);
  return result;
}

inline std::vector<std::string> w1_row(const std::string& system,
                                       const std::string& label,
                                       const core::metric_comparison& cmp) {
  return {system,
          label,
          util::fmt(cmp.w1_avg_rtt, 4),
          util::fmt(cmp.w1_p99_rtt, 4),
          util::fmt(cmp.w1_avg_jitter, 4),
          util::fmt(cmp.w1_p99_jitter, 4)};
}

inline std::vector<std::string> rho_row(const std::string& system,
                                        const std::string& label,
                                        const core::metric_comparison& cmp) {
  auto cell = [](const stats::correlation_result& r) {
    return util::fmt(r.rho, 4) + " [" + util::fmt(r.ci_low, 4) + "," +
           util::fmt(r.ci_high, 4) + "]";
  };
  return {system,
          label,
          cell(cmp.rho_avg_rtt),
          cell(cmp.rho_p99_rtt),
          cell(cmp.rho_avg_jitter),
          cell(cmp.rho_p99_jitter)};
}

}  // namespace dqn::bench
