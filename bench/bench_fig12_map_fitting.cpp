// Figure 12: fitting real traces with MAP models (Appendix A.1).
//
// The paper fits MAPs to BC-pAug89 and the Anarchy gaming trace and shows
// the model CDF of inter-arrival times tracking the empirical CDF. We fit
// our MMPP(2) moment-matcher to the synthetic stand-ins (DESIGN.md §2) and
// print both CDFs plus the matched statistics.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "queueing/map_fit.hpp"
#include "stats/ecdf.hpp"
#include "traffic/synthetic_traces.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace dqn;

namespace {

void fit_and_print(const char* name, const std::vector<double>& iats) {
  const auto fit2 = queueing::fit_mmpp2(iats);
  const auto fit4 = queueing::fit_map4(iats);
  std::printf("--- %s ---\n", name);
  std::printf("sample:  mean IAT %.3e s, SCV %.3f, lag-1 acf %.3f\n",
              fit2.target.mean, fit2.target.scv, fit2.target.lag1);
  std::printf("MAP(2):  mean IAT %.3e s, SCV %.3f, lag-1 acf %.3f "
              "(objective %.2e)\n",
              fit2.achieved.mean, fit2.achieved.scv, fit2.achieved.lag1,
              fit2.objective);
  std::printf("MAP(4):  mean IAT %.3e s, SCV %.3f, lag-1 acf %.3f "
              "(objective %.2e)\n",
              fit4.achieved.mean, fit4.achieved.scv, fit4.achieved.lag1,
              fit4.objective);

  std::vector<double> sorted = iats;
  std::sort(sorted.begin(), sorted.end());
  util::text_table table{{"IAT quantile (s)", "empirical F", "MAP(2) F",
                          "MAP(4) F"}};
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double x = sorted[static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1))];
    table.add_row({util::fmt(x, 7), util::fmt(q, 3),
                   util::fmt(fit2.fitted.iat_cdf(x), 3),
                   util::fmt(fit4.fitted.iat_cdf(x), 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("=== Figure 12: fitting traces with MAP models ===\n\n");
  util::rng rng{2022};
  const auto bc = traffic::make_bc_paug89_like(60'000, 1000.0, rng);
  fit_and_print("BC-pAug89 (synthetic stand-in)", bc.iats);
  const auto anarchy = traffic::make_anarchy_like(60'000, 500.0, rng);
  fit_and_print("Anarchy (synthetic stand-in)", anarchy.iats);
  std::printf("expected shape (paper Fig. 12): the MAP CDF tracks the "
              "empirical CDF; a higher-dimensional MAP improves the fit "
              "(and a moderate dimension is enough).\n");
  return 0;
}
