// Figure 14: queueing performance of multi-queue schedulers — the
// LDQBD-based queueing-theoretic model (Appendix B) against the DES, for
// the paper's numerical example: 3 classes with proportions 20/30/50%, the
// MAP(2) aggregate flow with mean rate 4800 pkts/s, exponential service
// with mean rate 100 Mbps / 1426 B, under SP and WFQ (1:1:1).
//
// Expected shape (paper): the model CDFs overlay the empirical DES CDFs;
// under SP the high-priority class has the shortest queue, under WFQ the
// classes are closer together.
#include <cmath>
#include <cstdio>
#include <vector>

#include "des/single_device.hpp"
#include "queueing/ldqbd.hpp"
#include "queueing/markovian_arrival.hpp"
#include "traffic/packet.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace dqn;

namespace {

constexpr double class_probs[3] = {0.2, 0.3, 0.5};
constexpr double mean_packet_bytes = 1426.0;
constexpr double service_rate = 100e6 / (mean_packet_bytes * 8.0);  // pkts/s

// DES of the same scheduler; returns per-class queue-length CDF sampled at
// arrival epochs (PASTA), using exponential packet sizes so the service is
// exponential like the model assumes.
std::vector<std::vector<double>> des_class_cdfs(des::scheduler_kind kind,
                                                std::size_t levels,
                                                double horizon) {
  util::rng rng{777};
  const auto map = queueing::map_process::paper_example();
  std::size_t state = map.sample_initial_state(rng);
  traffic::packet_stream stream;
  double t = 0;
  std::uint64_t pid = 0;
  while (t < horizon) {
    t += map.sample_iat(state, rng);
    traffic::packet p;
    p.pid = pid++;
    p.flow_id = static_cast<std::uint32_t>(pid % 13);
    p.size_bytes = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::lround(rng.exponential(1.0 / mean_packet_bytes))));
    const double u = rng.uniform();
    p.priority = u < class_probs[0] ? 0 : (u < class_probs[0] + class_probs[1] ? 1 : 2);
    stream.push_back({p, t});
  }
  des::single_switch_config cfg;
  cfg.ports = 1;
  cfg.tm.kind = kind;
  cfg.tm.classes = 3;
  if (kind == des::scheduler_kind::wfq) cfg.tm.class_weights = {1, 1, 1};
  cfg.bandwidth_bps = 100e6;
  const auto result = des::run_single_switch(
      cfg, {stream}, [](std::uint32_t, std::size_t) { return 0u; }, horizon,
      /*sample_queues=*/true);

  std::vector<std::vector<double>> cdfs(3, std::vector<double>(levels + 1, 0.0));
  for (const auto& sample : result.queue_samples) {
    for (std::size_t k = 0; k < 3; ++k) {
      // In-system count: waiting + the in-service packet of this class
      // (the model's n_k counts packets in system).
      const std::size_t in_system = sample[k] + (sample[3] == k + 1 ? 1 : 0);
      if (in_system <= levels) cdfs[k][in_system] += 1.0;
    }
  }
  for (auto& cdf : cdfs) {
    double total = 0;
    for (double c : cdf) total += c;
    double cum = 0;
    for (auto& c : cdf) {
      cum += c / total;
      c = cum;
    }
  }
  return cdfs;
}

}  // namespace

int main() {
  std::printf("=== Figure 14: queueing performance of schedulers "
              "(LDQBD model vs DES) ===\n");
  std::printf("3 classes (20%%/30%%/50%%), MAP(2) aggregate at 4800 pkts/s, "
              "exponential service, rho=%.3f\n\n",
              4800.0 / service_rate);

  const std::size_t levels = 30;
  for (const auto kind : {queueing::scheduler_discipline::sp,
                          queueing::scheduler_discipline::wfq}) {
    const bool is_sp = kind == queueing::scheduler_discipline::sp;
    std::printf("--- %s ---\n", is_sp ? "SP" : "WFQ (1:1:1)");
    queueing::scheduler_model_config cfg;
    cfg.class_probs = {class_probs[0], class_probs[1], class_probs[2]};
    cfg.service_rate = service_rate;
    cfg.discipline = kind;
    if (!is_sp) cfg.weights = {1, 1, 1};
    cfg.truncation_level = levels;
    queueing::ldqbd_scheduler_model model{queueing::map_process::paper_example(),
                                          cfg};
    util::stopwatch watch;
    model.solve();
    std::printf("model: %zu CTMC states, solved in %s\n", model.state_count(),
                util::format_duration(watch.elapsed_seconds()).c_str());

    const auto des_cdfs = des_class_cdfs(
        is_sp ? des::scheduler_kind::sp : des::scheduler_kind::wfq, levels, 60.0);

    util::text_table table{{"queue len", "class1 model", "class1 DES",
                            "class2 model", "class2 DES", "class3 model",
                            "class3 DES"}};
    std::vector<std::vector<double>> model_cdfs;
    for (std::size_t k = 0; k < 3; ++k) {
      auto dist = model.class_queue_length_distribution(k);
      double cum = 0;
      for (auto& p : dist) {
        cum += p;
        p = cum;
      }
      model_cdfs.push_back(std::move(dist));
    }
    for (const std::size_t n : {0, 1, 2, 3, 5, 8, 12}) {
      table.add_row({std::to_string(n), util::fmt(model_cdfs[0][n], 4),
                     util::fmt(des_cdfs[0][n], 4), util::fmt(model_cdfs[1][n], 4),
                     util::fmt(des_cdfs[1][n], 4), util::fmt(model_cdfs[2][n], 4),
                     util::fmt(des_cdfs[2][n], 4)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf("expected shape (paper Fig. 14): model and DES CDFs overlay; SP "
              "starves class 3 relative to WFQ.\n");
  std::printf("residual gaps at small queue lengths are inherent to the model "
              "(Appendix B assumes preemptive/fluid service allocation, the "
              "DES is packetized and non-preemptive) — the paper's own dashed "
              "curves show the same deviation.\n");
  return 0;
}
