// Table 6 + Table 10 + Figure 10: traffic-management generality.
//
// FatTree16, MAP traffic, one pre-trained device model, no retraining.
// Packet schedulers: 2-class WFQ with weight ratios 1:1, 5:4, 9:1; 2-class
// SP; 3-class WFQ 1:1:1; 3-class SP (§6.1). Alongside the w1/rho tables we
// print end-to-end delay CDFs (prediction vs ground truth) — Figure 10.
//
// Expected shape (paper): DQN stays accurate (w1 a few 1e-2) for every
// scheduler configuration; the CDFs nearly coincide.
#include "bench/common.hpp"

#include <cstdio>

#include "stats/ecdf.hpp"

using namespace dqn;

int main() {
  std::printf("=== Table 6 / Table 10 / Figure 10: TM generality "
              "(FatTree16, MAP) ===\n\n");
  const double scale = bench::bench_scale();
  const double horizon = 0.06 * scale;
  const double target_load = 0.6;
  const double bucket = horizon / 8.0;
  auto ptm = bench::network_model();

  struct tm_case {
    const char* label;
    des::tm_config tm;
  };
  auto wfq = [](std::vector<double> weights) {
    des::tm_config tm;
    tm.kind = des::scheduler_kind::wfq;
    tm.classes = weights.size();
    tm.class_weights = std::move(weights);
    return tm;
  };
  auto sp = [](std::size_t classes) {
    des::tm_config tm;
    tm.kind = des::scheduler_kind::sp;
    tm.classes = classes;
    return tm;
  };
  auto drr = [](std::vector<double> weights) {
    des::tm_config tm;
    tm.kind = des::scheduler_kind::drr;
    tm.classes = weights.size();
    tm.class_weights = std::move(weights);
    return tm;
  };
  const tm_case cases[] = {
      {"2-class WFQ 1:1", wfq({1, 1})},
      {"2-class WFQ 5:4", wfq({5, 4})},
      {"2-class WFQ 9:1", wfq({9, 1})},
      {"2-class DRR 2:1", drr({2, 1})},
      {"2-class SP", sp(2)},
      {"3-class WFQ 1:1:1", wfq({1, 1, 1})},
      {"3-class SP", sp(3)},
  };

  util::text_table w1_table{{"config", "scheduler", "avgRTT(w1)", "p99RTT(w1)",
                             "avgJitter(w1)", "p99Jitter(w1)"}};
  util::text_table rho_table{{"config", "scheduler", "avgRTT rho[CI]",
                              "p99RTT rho[CI]", "avgJitter rho[CI]",
                              "p99Jitter rho[CI]"}};

  util::text_table ablation{{"scheduler", "avgRTT w1 (SEC on)",
                             "avgRTT w1 (SEC off)"}};
  bool printed_cdf = false;
  for (const auto& tc : cases) {
    const auto s = bench::make_scenario_load(
        topo::make_fattree16(bench::bench_links()), traffic::traffic_model::map,
        target_load, horizon, 1234, tc.tm.classes);
    const auto result = bench::run_and_compare(s, ptm, tc.tm, bucket);
    const std::string classes = std::to_string(tc.tm.classes) + "-class";
    w1_table.add_row(bench::w1_row(classes, tc.label, result.comparison));
    rho_table.add_row(bench::rho_row(classes, tc.label, result.comparison));
    std::printf("[dqn] %-18s done: %zu deliveries\n", tc.label,
                result.truth.deliveries.size());

    // §6.1 SEC ablation, where SEC actually has work to do: multi-class
    // schedulers (under FIFO the deterministic queueing priors dominate).
    if (tc.tm.kind == des::scheduler_kind::sp) {
      const auto no_sec =
          bench::run_and_compare(s, ptm, tc.tm, bucket, /*apply_sec=*/false);
      ablation.add_row({tc.label, util::fmt(result.comparison.w1_avg_rtt, 4),
                        util::fmt(no_sec.comparison.w1_avg_rtt, 4)});
    }

    // Figure 10: CDFs for the first configuration.
    if (!printed_cdf) {
      printed_cdf = true;
      const auto t = des::all_latencies(result.truth);
      const auto p = des::all_latencies(result.prediction);
      const stats::ecdf truth_cdf{t};
      const stats::ecdf pred_cdf{p};
      std::printf("\n--- Figure 10a: end-to-end delay CDF (%s) ---\n", tc.label);
      std::printf("%-14s %-12s %-12s\n", "delay (us)", "F_truth", "F_dqn");
      const auto curve = truth_cdf.curve(12);
      for (const auto& [x, f] : curve)
        std::printf("%-14.2f %-12.4f %-12.4f\n", x * 1e6, f, pred_cdf(x));
      std::printf("\n");
    }
  }

  std::printf("--- Table 6 (normalized w1; lower is better) ---\n%s\n",
              w1_table.to_string().c_str());
  std::printf("--- Table 10 (Pearson rho with 95%% CI) ---\n%s\n",
              rho_table.to_string().c_str());
  std::printf("--- §6.1 ablation: SEC under multi-class scheduling ---\n%s\n",
              ablation.to_string().c_str());
  return 0;
}
