// Micro-benchmarks (google-benchmark) of the hot kernels every experiment
// rides on: the matmul behind PTM inference, scheduler enqueue/dequeue, the
// DES event loop (bare and with a live obs counter handle), W1 metric
// computation, PFM forwarding, and the observability primitives — scoped
// timer, sharded metric handles — in both their no-op and recording modes.
// The 0-vs-1 arg pairs quantify the "live sink < 5% over null sink"
// overhead budget the obs layer is held to.
//
// Honors DQN_BENCH_JSON (bench/common.hpp): when set, the recording-mode
// benchmarks route through the shared bench sink and the registry snapshot
// is dumped at exit — CI uploads it as the perf-trajectory artifact.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iterator>
#include <string>

#include "bench/common.hpp"
#include "core/pfm.hpp"
#include "des/simulator.hpp"
#include "des/traffic_manager.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "nn/seq.hpp"
#include "nn/seq_regressor.hpp"
#include "nn/workspace.hpp"
#include "obs/handles.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "stats/wasserstein.hpp"
#include "util/rng.hpp"

using namespace dqn;

namespace {

// The sink recording-mode benchmarks write into: the shared DQN_BENCH_JSON
// sink when profiling is on (so the exported snapshot has real content),
// otherwise a process-local one.
obs::sink& recording_sink() {
  static obs::sink local;
  obs::sink* shared = bench::bench_sink();
  return shared != nullptr ? *shared : local;
}

void bm_matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::rng rng{1};
  const auto a = nn::matrix::randn(n, n, rng, 1.0);
  const auto b = nn::matrix::randn(n, n, rng, 1.0);
  for (auto _ : state) {
    auto c = nn::matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(bm_matmul)->Arg(32)->Arg(64)->Arg(128);

// --- GEMM backend pairs -----------------------------------------------------
// Naive vs blocked vs SIMD at PTM-typical shapes. The CI perf-smoke job runs
// bm_gemm_backend and gates on dispatched-vs-naive; the ≥4x acceptance number
// in docs/PERFORMANCE.md comes from the (256, 64, 357) row — the MLP PTM's
// first layer over a batch of 256 flattened 21x17 windows.
struct gemm_bench_shape {
  std::size_t m, n, k;
};
constexpr gemm_bench_shape kGemmShapes[] = {
    {256, 64, 357},  // MLP PTM layer 1: batch 256 x flattened window
    {256, 32, 64},   // MLP PTM layer 2
    {256, 128, 17},  // LSTM x_t·Wx: batch x 4H, k = feature_count
    {21, 21, 16},    // attention scores: T x T over key_dim
};

void bm_gemm_backend(benchmark::State& state) {
  const auto be = static_cast<nn::kernels::backend>(state.range(0));
  const auto& shape = kGemmShapes[static_cast<std::size_t>(state.range(1))];
  if (!nn::kernels::backend_supported(be)) {
    state.SkipWithError("backend not compiled in or unsupported on this CPU");
    return;
  }
  util::rng rng{7};
  const auto a = nn::matrix::randn(shape.m, shape.k, rng, 1.0);
  const auto b = nn::matrix::randn(shape.k, shape.n, rng, 1.0);
  nn::matrix c{shape.m, shape.n};
  for (auto _ : state) {
    nn::kernels::gemm_nn(be, a.data().data(), b.data().data(), c.data().data(),
                         shape.m, shape.n, shape.k, /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * shape.m * shape.n * shape.k);
  state.SetLabel(std::string{nn::kernels::to_string(be)} + " " +
                 std::to_string(shape.m) + "x" + std::to_string(shape.n) +
                 "x" + std::to_string(shape.k));
}
void register_gemm_backend_benches() {
  using nn::kernels::backend;
  for (const auto be :
       {backend::naive, backend::blocked, backend::avx2, backend::avx512})
    for (std::size_t s = 0; s < std::size(kGemmShapes); ++s)
      if (nn::kernels::backend_supported(be))
        benchmark::RegisterBenchmark("bm_gemm_backend", bm_gemm_backend)
            ->Args({static_cast<std::int64_t>(be), static_cast<std::int64_t>(s)});
}

// --- Forward-pass pairs: allocating vs workspace ---------------------------
// Arg 0: legacy forward_const (allocates every intermediate). Arg 1: the
// workspace overload (zero steady-state allocations). The delta is what the
// engine's per-worker workspaces buy on the inference hot path.
void bm_seq_regressor_forward(benchmark::State& state) {
  util::rng rng{8};
  nn::seq_regressor_config cfg;  // defaults = CPU-scaled Table 1 widths
  nn::seq_regressor net{cfg, rng};
  nn::seq_batch x{64, 21, cfg.input_dim};
  for (auto& v : x.data()) v = rng.uniform(-1.0, 1.0);
  nn::workspace ws;
  for (auto _ : state) {
    if (state.range(0) == 0) {
      auto y = net.forward_const(x);
      benchmark::DoNotOptimize(y.data().data());
    } else {
      ws.reset();
      const nn::matrix& y = net.forward(x, ws);
      benchmark::DoNotOptimize(y.data().data());
    }
  }
  state.SetItemsProcessed(state.iterations() * x.batch());
}
BENCHMARK(bm_seq_regressor_forward)->Arg(0)->Arg(1);

void bm_mlp_forward(benchmark::State& state) {
  util::rng rng{9};
  nn::mlp net{{357, 64, 32, 1}, nn::activation::relu, rng};
  nn::matrix x{256, 357};
  for (auto& v : x.data()) v = rng.uniform(-1.0, 1.0);
  nn::workspace ws;
  for (auto _ : state) {
    if (state.range(0) == 0) {
      auto y = net.forward_const(x);
      benchmark::DoNotOptimize(y.data().data());
    } else {
      ws.reset();
      const nn::matrix& y = net.forward(x, ws);
      benchmark::DoNotOptimize(y.data().data());
    }
  }
  state.SetItemsProcessed(state.iterations() * x.rows());
}
BENCHMARK(bm_mlp_forward)->Arg(0)->Arg(1);

void bm_traffic_manager(benchmark::State& state) {
  const auto kind = static_cast<des::scheduler_kind>(state.range(0));
  des::tm_config cfg;
  cfg.kind = kind;
  cfg.classes = kind == des::scheduler_kind::fifo ? 1 : 3;
  if (kind == des::scheduler_kind::wrr || kind == des::scheduler_kind::drr ||
      kind == des::scheduler_kind::wfq)
    cfg.class_weights = {5, 3, 1};
  des::traffic_manager tm{cfg};
  util::rng rng{2};
  traffic::packet p;
  for (auto _ : state) {
    p.size_bytes = static_cast<std::uint32_t>(rng.uniform_int(64, 1500));
    p.priority = static_cast<std::uint8_t>(rng.uniform_int(cfg.classes));
    benchmark::DoNotOptimize(tm.enqueue(p));
    auto out = tm.dequeue();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_traffic_manager)
    ->Arg(static_cast<int>(des::scheduler_kind::fifo))
    ->Arg(static_cast<int>(des::scheduler_kind::sp))
    ->Arg(static_cast<int>(des::scheduler_kind::wrr))
    ->Arg(static_cast<int>(des::scheduler_kind::drr))
    ->Arg(static_cast<int>(des::scheduler_kind::wfq));

// Arg 0: default (null) event-counter handle — one branch per event.
// Arg 1: live "des.events" handle into a recording sink — the instrumented
// event loop must stay within the 5% overhead budget of arg 0.
void bm_event_loop(benchmark::State& state) {
  const obs::counter_handle events =
      state.range(0) == 0 ? obs::counter_handle{}
                          : recording_sink().counter_handle_for("des.events");
  for (auto _ : state) {
    des::simulator sim;
    sim.set_event_counter(events);
    int counter = 0;
    for (int i = 0; i < 1000; ++i)
      sim.schedule_at(i * 1e-6, [&counter] { ++counter; });
    sim.run(1.0);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(bm_event_loop)->Arg(0)->Arg(1);

void bm_wasserstein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::rng rng{3};
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.exponential(1.0);
    b[i] = rng.exponential(1.2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::wasserstein1(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_wasserstein)->Arg(1000)->Arg(10000);

void bm_pfm_forwarding(benchmark::State& state) {
  const std::size_t ports = 8;
  util::rng rng{4};
  std::vector<traffic::packet_stream> ingress(ports);
  for (std::size_t port = 0; port < ports; ++port) {
    double t = 0;
    for (int i = 0; i < 1000; ++i) {
      t += rng.exponential(1e5);
      traffic::packet p;
      p.pid = port * 10000 + static_cast<std::uint64_t>(i);
      p.flow_id = static_cast<std::uint32_t>(rng.uniform_int(64));
      ingress[port].push_back({p, t});
    }
  }
  auto forward = [](std::uint32_t fid, std::size_t) -> std::size_t {
    return fid % 8;
  };
  for (auto _ : state) {
    auto egress = core::apply_forwarding(ingress, forward, ports);
    benchmark::DoNotOptimize(egress.data());
  }
  state.SetItemsProcessed(state.iterations() * ports * 1000);
}
BENCHMARK(bm_pfm_forwarding);

// Arg 0: null sink (the default in every config) — must be indistinguishable
// from no instrumentation at all. Arg 1: recording sink — the per-span cost
// paid only when the user opts into profiling.
void bm_obs_scoped_timer(benchmark::State& state) {
  obs::sink sink;
  obs::sink* target = state.range(0) == 0 ? nullptr : &sink;
  std::uint64_t index = 0;
  for (auto _ : state) {
    obs::scoped_timer timer{target, "bench", "span", index++};
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_obs_scoped_timer)->Arg(0)->Arg(1);

// Arg 0: default-constructed (null) counter handle — the one-branch no-op
// every un-profiled hot path pays. Arg 1: live handle — a relaxed atomic
// store into the caller's exclusive shard.
void bm_obs_counter_handle(benchmark::State& state) {
  const obs::counter_handle handle =
      state.range(0) == 0
          ? obs::counter_handle{}
          : recording_sink().counter_handle_for("bench.counter");
  for (auto _ : state) {
    obs::counter_handle local = handle;
    local.add();
    benchmark::DoNotOptimize(&local);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_obs_counter_handle)->Arg(0)->Arg(1);

// Same pairing for the quantile histogram: bucket index + shard update.
void bm_obs_histogram_handle(benchmark::State& state) {
  const obs::histogram_handle handle =
      state.range(0) == 0
          ? obs::histogram_handle{}
          : recording_sink().histogram_handle_for("bench.histogram");
  double value = 1e-6;
  for (auto _ : state) {
    obs::histogram_handle local = handle;
    local.observe(value);
    value = value < 1.0 ? value * 1.0001 : 1e-6;
    benchmark::DoNotOptimize(&local);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_obs_histogram_handle)->Arg(0)->Arg(1);

}  // namespace

// Not BENCHMARK_MAIN(): when DQN_BENCH_JSON profiling is on, the whole
// benchmark run is wrapped in one "bench"/"micro_kernels" span so the
// exported snapshot carries the run's wall time next to the handle metrics.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  register_gemm_backend_benches();
  {
    obs::scoped_timer run_timer{bench::bench_sink(), "bench", "micro_kernels"};
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
