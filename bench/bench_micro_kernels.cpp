// Micro-benchmarks (google-benchmark) of the hot kernels every experiment
// rides on: the matmul behind PTM inference, scheduler enqueue/dequeue, the
// DES event loop, W1 metric computation, PFM forwarding, and the
// observability scoped-timer in both its no-op and recording modes.
#include <benchmark/benchmark.h>

#include "core/pfm.hpp"
#include "des/simulator.hpp"
#include "des/traffic_manager.hpp"
#include "nn/matrix.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "stats/wasserstein.hpp"
#include "util/rng.hpp"

using namespace dqn;

namespace {

void bm_matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::rng rng{1};
  const auto a = nn::matrix::randn(n, n, rng, 1.0);
  const auto b = nn::matrix::randn(n, n, rng, 1.0);
  for (auto _ : state) {
    auto c = nn::matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(bm_matmul)->Arg(32)->Arg(64)->Arg(128);

void bm_traffic_manager(benchmark::State& state) {
  const auto kind = static_cast<des::scheduler_kind>(state.range(0));
  des::tm_config cfg;
  cfg.kind = kind;
  cfg.classes = kind == des::scheduler_kind::fifo ? 1 : 3;
  if (kind == des::scheduler_kind::wrr || kind == des::scheduler_kind::drr ||
      kind == des::scheduler_kind::wfq)
    cfg.class_weights = {5, 3, 1};
  des::traffic_manager tm{cfg};
  util::rng rng{2};
  traffic::packet p;
  for (auto _ : state) {
    p.size_bytes = static_cast<std::uint32_t>(rng.uniform_int(64, 1500));
    p.priority = static_cast<std::uint8_t>(rng.uniform_int(cfg.classes));
    benchmark::DoNotOptimize(tm.enqueue(p));
    auto out = tm.dequeue();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_traffic_manager)
    ->Arg(static_cast<int>(des::scheduler_kind::fifo))
    ->Arg(static_cast<int>(des::scheduler_kind::sp))
    ->Arg(static_cast<int>(des::scheduler_kind::wrr))
    ->Arg(static_cast<int>(des::scheduler_kind::drr))
    ->Arg(static_cast<int>(des::scheduler_kind::wfq));

void bm_event_loop(benchmark::State& state) {
  for (auto _ : state) {
    des::simulator sim;
    int counter = 0;
    for (int i = 0; i < 1000; ++i)
      sim.schedule_at(i * 1e-6, [&counter] { ++counter; });
    sim.run(1.0);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(bm_event_loop);

void bm_wasserstein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::rng rng{3};
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.exponential(1.0);
    b[i] = rng.exponential(1.2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::wasserstein1(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_wasserstein)->Arg(1000)->Arg(10000);

void bm_pfm_forwarding(benchmark::State& state) {
  const std::size_t ports = 8;
  util::rng rng{4};
  std::vector<traffic::packet_stream> ingress(ports);
  for (std::size_t port = 0; port < ports; ++port) {
    double t = 0;
    for (int i = 0; i < 1000; ++i) {
      t += rng.exponential(1e5);
      traffic::packet p;
      p.pid = port * 10000 + static_cast<std::uint64_t>(i);
      p.flow_id = static_cast<std::uint32_t>(rng.uniform_int(64));
      ingress[port].push_back({p, t});
    }
  }
  auto forward = [](std::uint32_t fid, std::size_t) -> std::size_t {
    return fid % 8;
  };
  for (auto _ : state) {
    auto egress = core::apply_forwarding(ingress, forward, ports);
    benchmark::DoNotOptimize(egress.data());
  }
  state.SetItemsProcessed(state.iterations() * ports * 1000);
}
BENCHMARK(bm_pfm_forwarding);

// Arg 0: null sink (the default in every config) — must be indistinguishable
// from no instrumentation at all. Arg 1: recording sink — the per-span cost
// paid only when the user opts into profiling.
void bm_obs_scoped_timer(benchmark::State& state) {
  obs::sink sink;
  obs::sink* target = state.range(0) == 0 ? nullptr : &sink;
  std::uint64_t index = 0;
  for (auto _ : state) {
    obs::scoped_timer timer{target, "bench", "span", index++};
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_obs_scoped_timer)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
