// Figure 6: the statistical structure of PTM residuals that motivates SEC
// (§4.3). For each scheduler we bin the validation predictions by predicted
// sojourn and report the mean relative error per bin, verifying the paper's
// three observations: (1) the error is not monotonic in the predicted
// sojourn, (2) nearby predictions have similar errors, (3) the error
// structure is stable across schedulers and traffic patterns.
#include "bench/common.hpp"

#include <cmath>
#include <cstdio>

#include "core/delay_provider.hpp"

using namespace dqn;

int main() {
  std::printf("=== Figure 6: PTM residual structure (per scheduler) ===\n\n");
  auto cfg = bench::standard_dutil(8, 12, 1e9);
  auto model = bench::cached_model(cfg);

  for (const auto sched : {des::scheduler_kind::fifo, des::scheduler_kind::sp,
                           des::scheduler_kind::wfq}) {
    util::rng rng{util::derive_seed(606, static_cast<std::uint64_t>(sched))};
    core::ptm_dataset eval;
    eval.time_steps = cfg.ptm.time_steps;
    for (int i = 0; i < 8; ++i) {
      const auto sample = core::generate_stream_sample(cfg, rng, &sched);
      eval.append(sample.data);
    }
    // Window-level inference goes through the delay-provider layer
    // (scripts/lint.sh keeps ptm_model::predict private to src/core).
    core::ptm_delay_provider provider{model};
    const auto raw = provider.predict_windows(eval.windows, /*apply_sec=*/false);

    // Bin by predicted sojourn (log-spaced) and report mean relative error.
    std::printf("--- scheduler: %s ---\n", des::to_string(sched));
    util::text_table table{{"predicted sojourn bin", "count",
                            "mean rel. error", "after SEC"}};
    const double lo = 1e-7, hi = 1e-3;
    const int bins = 8;
    for (int b = 0; b < bins; ++b) {
      const double bin_lo = lo * std::pow(hi / lo, b / double(bins));
      const double bin_hi = lo * std::pow(hi / lo, (b + 1) / double(bins));
      double err = 0, err_sec = 0;
      std::size_t count = 0;
      for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] < bin_lo || raw[i] >= bin_hi) continue;
        const double truth = std::max(eval.targets[i], 1e-9);
        err += (raw[i] - eval.targets[i]) / truth;
        err_sec += (model->sec(sched).correct(raw[i]) - eval.targets[i]) / truth;
        ++count;
      }
      if (count < 10) continue;
      table.add_row({util::fmt(bin_lo * 1e6, 3) + "-" + util::fmt(bin_hi * 1e6, 3) + " us",
                     std::to_string(count),
                     util::fmt(err / static_cast<double>(count), 3),
                     util::fmt(err_sec / static_cast<double>(count), 3)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf("expected shape (paper Fig. 6): non-monotonic but locally "
              "consistent errors, stable across schedulers — which is what "
              "makes the per-bin SEC correction work.\n");
  return 0;
}
