// Table 5 + Table 9 + §6.1 SEC ablation: topology generality in the
// baseline configuration (FIFO + Poisson).
//
// One pre-trained device model is composed into nine different topologies
// with NO retraining: Line4/6, Abilene, GÉANT, 2dTorus 4x4/6x6, and
// FatTree16/64/128. RouteNet (trained on FatTree16 only, traffic-matrix
// input) is evaluated on every topology by re-deriving its path features —
// exactly the transfer the paper shows it cannot make. MimicNet runs on the
// fat-trees (the only family it supports).
//
// Expected shape (paper): DQN w1 stays ~1e-3..1e-1 everywhere; RouteNet is
// 1-3 orders worse, especially off-FatTree; MimicNet matches DQN's RTT
// accuracy on fat-trees but has clearly worse jitter; turning SEC off
// degrades DQN's accuracy substantially.
#include "bench/common.hpp"

#include <cstdio>
#include <functional>

#include "baselines/mimicnet.hpp"
#include "baselines/routenet.hpp"

using namespace dqn;

int main() {
  std::printf("=== Table 5 / Table 9: topology generality (FIFO + Poisson) ===\n\n");
  const double scale = bench::bench_scale();
  const des::tm_config fifo_tm;
  auto ptm = bench::network_model();

  struct topo_case {
    const char* name;
    std::function<topo::topology()> build;
    double load;     // target max-link utilisation
    double horizon;  // seconds
    bool fattree;
    bool ablate_sec;
  };
  const topo_case cases[] = {
      {"Line4", [] { return topo::make_line(4, bench::bench_links()); }, 0.6, 0.08 * scale, false, false},
      {"Line6", [] { return topo::make_line(6, bench::bench_links()); }, 0.6, 0.08 * scale, false, true},
      {"Abilene", [] { return topo::make_abilene(bench::bench_links()); }, 0.6, 0.06 * scale, false, false},
      {"GEANT", [] { return topo::make_geant(bench::bench_links()); }, 0.6, 0.04 * scale, false, false},
      {"2dTorus(4x4)", [] { return topo::make_torus2d(4, 4, bench::bench_links()); }, 0.6, 0.05 * scale, false, false},
      {"2dTorus(6x6)", [] { return topo::make_torus2d(6, 6, bench::bench_links()); }, 0.6, 0.03 * scale, false, false},
      {"FatTree16", [] { return topo::make_fattree16(bench::bench_links()); }, 0.6, 0.08 * scale, true, false},
      {"FatTree64", [] { return topo::make_fattree64(bench::bench_links()); }, 0.6, 0.02 * scale, true, true},
      {"FatTree128", [] { return topo::make_fattree128(bench::bench_links()); }, 0.6, 0.012 * scale, true, true},
  };

  util::text_table w1_table{{"system", "topology", "avgRTT(w1)", "p99RTT(w1)",
                             "avgJitter(w1)", "p99Jitter(w1)"}};
  util::text_table rho_table{{"system", "topology", "avgRTT rho[CI]",
                              "p99RTT rho[CI]", "avgJitter rho[CI]",
                              "p99Jitter rho[CI]"}};
  util::text_table ablation{{"topology", "avgRTT w1 (SEC on)",
                             "avgRTT w1 (SEC off)"}};

  // RouteNet: train once on FatTree16 + Poisson (the baseline config).
  baselines::routenet_estimator rn;
  {
    std::vector<baselines::routenet_estimator::training_example> examples;
    int run = 0;
    for (const double mult : {0.7, 1.0, 1.3}) {
      auto s = bench::make_scenario_load(topo::make_fattree16(bench::bench_links()),
                                         traffic::traffic_model::poisson,
                                         0.6 * mult, 0.06 * scale, 900 + run++);
      des::network_config oracle_cfg;
      oracle_cfg.tm = fifo_tm;
      des::network oracle{s.topo(), *s.routes, oracle_cfg};
      const auto truth = oracle.run(s.streams, s.horizon);
      auto batch = baselines::routenet_estimator::make_examples(
          s.topo(), *s.routes, s.flows, s.flow_rates, 712.0, truth);
      examples.insert(examples.end(), batch.begin(), batch.end());
    }
    rn.train(examples, 600);
  }

  // MimicNet: train once from a FatTree16 reference run with hop records.
  baselines::mimicnet_estimator mn;
  {
    auto s = bench::make_scenario_load(topo::make_fattree16(bench::bench_links()),
                                       traffic::traffic_model::poisson, 0.6,
                                       0.06 * scale, 950);
    des::network_config oracle_cfg;
    oracle_cfg.tm = fifo_tm;
    oracle_cfg.record_hops = true;
    des::network oracle{s.topo(), *s.routes, oracle_cfg};
    const auto truth = oracle.run(s.streams, s.horizon);
    mn.train(s.topo(), truth, 80);
  }

  for (const auto& tc : cases) {
    auto s = bench::make_scenario_load(tc.build(), traffic::traffic_model::poisson,
                                       tc.load, tc.horizon, 4000);
    const double bucket = tc.horizon / 8.0;
    const auto result = bench::run_and_compare(s, ptm, fifo_tm, bucket);
    w1_table.add_row(bench::w1_row("DQN", tc.name, result.comparison));
    rho_table.add_row(bench::rho_row("DQN", tc.name, result.comparison));
    std::printf("[dqn] %-14s done: %zu deliveries, %zu IRSA iterations "
                "(diameter bound %zu)\n",
                tc.name, result.truth.deliveries.size(),
                result.engine_stats.iterations, 1 + s.topo().diameter());

    // RouteNet transfer.
    const auto rn_pred =
        rn.predict_flows(s.topo(), *s.routes, s.flows, s.flow_rates, 712.0);
    const auto rn_cmp =
        baselines::compare_routenet(result.truth, rn_pred, bucket, 6);
    w1_table.add_row(bench::w1_row("RN", tc.name, rn_cmp));
    rho_table.add_row(bench::rho_row("RN", tc.name, rn_cmp));

    // MimicNet on the fat-tree family.
    if (tc.fattree) {
      const auto mn_run = mn.predict(s.topo(), *s.routes, s.streams, tc.horizon);
      const auto mn_cmp = core::compare_runs(result.truth, mn_run, bucket, 6);
      w1_table.add_row(bench::w1_row("MN", tc.name, mn_cmp));
      rho_table.add_row(bench::rho_row("MN", tc.name, mn_cmp));
    }

    // §6.1 ablation: SEC off.
    if (tc.ablate_sec) {
      const auto no_sec =
          bench::run_and_compare(s, ptm, fifo_tm, bucket, /*apply_sec=*/false);
      ablation.add_row({tc.name, util::fmt(result.comparison.w1_avg_rtt, 4),
                        util::fmt(no_sec.comparison.w1_avg_rtt, 4)});
    }
  }

  std::printf("\n--- Table 5 (normalized w1, path-wise; lower is better) ---\n%s\n",
              w1_table.to_string().c_str());
  std::printf("--- Table 9 (Pearson rho with 95%% CI) ---\n%s\n",
              rho_table.to_string().c_str());
  std::printf("--- §6.1 ablation: statistical error correction ---\n%s\n",
              ablation.to_string().c_str());
  std::printf(
      "notes:\n"
      " * under FIFO this ablation is near-vacuous in our reproduction: the\n"
      "   queueing-theoretic priors leave SEC little bias to correct (its\n"
      "   significance gate then keeps it silent). The working SEC ablation\n"
      "   lives in bench_table6 (multi-class schedulers).\n"
      " * IRSA cannot be ablated — without it the mis-batching problem breaks\n"
      "   time order (§6.1).\n");
  return 0;
}
