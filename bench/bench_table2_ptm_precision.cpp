// Table 2: precision of the PTM device model for a K-port switch, measured
// as the normalized Wasserstein distance w1 between predicted and true
// sojourn-time distributions on exogenous evaluation streams (configurations
// never seen in training). The "refined" column doubles the window length
// (the paper doubles time steps 21 -> 42).
//
// Expected shape (paper): w1 grows with K (more ports -> more contention
// uncertainty); refinement helps most for small-to-medium K; multi-class
// rows are slightly worse than FIFO at the same K.
#include "bench/common.hpp"

#include <cstdio>

using namespace dqn;

namespace {

double exogenous_w1(const core::dutil_config& cfg,
                    const std::shared_ptr<const core::ptm_model>& model,
                    des::scheduler_kind scheduler, std::size_t classes,
                    std::uint64_t seed) {
  // 8 fresh stream samples with totally different configurations (§5.2).
  core::dutil_config eval_cfg = cfg;
  eval_cfg.classes = classes;
  util::rng rng{util::derive_seed(seed, 0xe7a1)};
  core::ptm_dataset exogenous;
  exogenous.time_steps = cfg.ptm.time_steps;
  for (int i = 0; i < 8; ++i) {
    const auto sample = core::generate_stream_sample(eval_cfg, rng, &scheduler);
    exogenous.append(sample.data);
  }
  return core::evaluate_w1(*model, exogenous);
}

}  // namespace

int main() {
  std::printf("=== Table 2: PTM precision for a K-port switch ===\n");
  std::printf("metric: normalized w1 = W1(prediction,label)/W1(0,label), lower is better\n");
  std::printf("refined = window length doubled (paper: time steps 21 -> 42)\n\n");

  util::text_table table{
      {"scheduler", "device", "classes", "w1", "w1(refined)"}};

  const bool full = std::getenv("DQN_BENCH_FULL") != nullptr;
  std::vector<std::size_t> port_counts = {2, 4, 8, 16};
  if (full) {
    port_counts.push_back(32);
    port_counts.push_back(64);
  }

  // FIFO rows across K.
  for (const std::size_t k : port_counts) {
    auto cfg = bench::standard_dutil(k, /*time_steps=*/12);
    cfg.schedulers = {des::scheduler_kind::fifo};
    cfg.classes = 1;
    // Keep total training packets roughly constant as K grows, and use a
    // lighter budget than the shared network model: Table 2 needs 10+
    // separately trained models.
    cfg.streams = std::max<std::size_t>(16, (cfg.streams / 3) / (k / 2));
    cfg.ptm.epochs = std::max<std::size_t>(6, cfg.ptm.epochs / 3);
    auto base = bench::cached_model(cfg);
    const double w1 =
        exogenous_w1(cfg, base, des::scheduler_kind::fifo, 1, 7000 + k);

    // The paper reports no refined value for the (already DES-level) 2-port
    // switch; skip training that model.
    std::string refined_cell = "-";
    if (k != 2) {
      auto refined_cfg = cfg;
      refined_cfg.ptm.time_steps = 24;
      auto refined = bench::cached_model(refined_cfg);
      refined_cell = util::fmt(
          exogenous_w1(refined_cfg, refined, des::scheduler_kind::fifo, 1, 7000 + k),
          6);
    }
    table.add_row({"FIFO", std::to_string(k) + "-port", "1", util::fmt(w1, 6),
                   refined_cell});
  }

  // Multi-class rows. The paper reports 4-port with 2 and 3 classes; we also
  // sweep K at 2 classes, because in this reproduction the FIFO rows are
  // exact by construction (see the note below) and the DNN's K-dependence
  // shows on the genuinely learned multi-class part.
  for (const std::size_t k : port_counts) {
    if (k > 16) continue;
    auto cfg = bench::standard_dutil(k, /*time_steps=*/12);
    cfg.classes = 2;
    cfg.streams = std::max<std::size_t>(16, (cfg.streams / 3) / (k / 2));
    cfg.ptm.epochs = std::max<std::size_t>(8, cfg.ptm.epochs / 2);
    cfg.seed += 2;
    auto base = bench::cached_model(cfg);
    const double w1 =
        exogenous_w1(cfg, base, des::scheduler_kind::wfq, 2, 7100 + k);
    std::string refined_cell = "-";
    if (k == 4) {
      auto refined_cfg = cfg;
      refined_cfg.ptm.time_steps = 24;
      auto refined = bench::cached_model(refined_cfg);
      refined_cell = util::fmt(
          exogenous_w1(refined_cfg, refined, des::scheduler_kind::wfq, 2, 7100 + k),
          6);
    }
    table.add_row({"Multi-level", std::to_string(k) + "-port", "2",
                   util::fmt(w1, 6), refined_cell});
  }
  {
    auto cfg = bench::standard_dutil(4, /*time_steps=*/12);
    cfg.classes = 3;
    cfg.streams /= 3;
    cfg.ptm.epochs = std::max<std::size_t>(8, cfg.ptm.epochs / 2);
    cfg.seed += 3;
    auto base = bench::cached_model(cfg);
    const double w1 =
        exogenous_w1(cfg, base, des::scheduler_kind::wfq, 3, 7103);
    table.add_row({"Multi-level", "4-port", "3", util::fmt(w1, 6), "-"});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "notes:\n"
      " * FIFO rows are ~0 by construction in this reproduction: the device\n"
      "   model carries the exact work-conserving (Lindley) bound as prior\n"
      "   knowledge, and under FIFO the sojourn *is* that bound — the paper's\n"
      "   methodology (express what is tractable, learn the rest) taken to\n"
      "   its conclusion. The learned part is exercised by the multi-class\n"
      "   rows, where w1 grows with K as in the paper.\n"
      " * models are CPU-scaled (DESIGN.md §2); compare shapes, not absolute\n"
      "   values.\n");
  return 0;
}
