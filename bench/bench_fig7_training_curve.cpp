// Figure 7: MSE over time for PTM training (a 4-port switch). The paper
// shows the loss dropping quickly and the training being stable; we print
// the per-epoch MSE curve (scaled-target space) and the wall time.
#include "bench/common.hpp"

#include <cstdio>

using namespace dqn;

int main() {
  std::printf("=== Figure 7: MSE over time for PTM training (4-port switch) ===\n\n");
  auto cfg = bench::standard_dutil(4, 12);
  cfg.seed += 0xf16;  // independent of the cached table models
  // This bench demonstrates the training process itself, so it retrains on
  // every invocation; keep the budget moderate.
  cfg.streams = std::max<std::size_t>(24, cfg.streams / 2);
  cfg.ptm.epochs = std::max<std::size_t>(8, cfg.ptm.epochs * 2 / 3);

  std::printf("%-8s %-12s\n", "epoch", "MSE");
  const auto bundle = core::train_device_model(
      cfg, [](std::size_t epoch, double mse) {
        std::printf("%-8zu %-12.6f\n", epoch, mse);
      });

  std::printf("\ntraining wall time: %s\n",
              util::format_duration(bundle.report.train_seconds).c_str());
  const double first = bundle.report.epoch_mse.front();
  const double last = bundle.report.epoch_mse.back();
  std::printf("loss drop: %.6f -> %.6f (%.1fx)\n", first, last, first / last);
  std::printf("validation normalized w1 (with SEC): %.4f\n",
              core::evaluate_w1(bundle.model, bundle.validation));
  std::printf("\nexpected shape (paper Fig. 7): fast initial drop, stable tail.\n");
  return 0;
}
