// Parameter tuning (the paper's §1 motivating task): a two-class service —
// latency-sensitive control traffic (class 0) sharing a FatTree16 fabric
// with bulk transfers (class 1). Which WFQ weight ratio keeps control-plane
// p99 latency low without starving the bulk class?
//
// Because DeepQueueNet's device model is TM-aware (scheduler one-hot +
// class weights are input features, §4.1), sweeping the scheduler
// configuration needs no retraining — each candidate is one inference run.
#include "examples/example_util.hpp"

using namespace dqn;

namespace {

struct class_latencies {
  std::vector<double> control;  // class 0
  std::vector<double> bulk;     // class 1
};

class_latencies split_by_class(const des::run_result& run,
                               const std::vector<traffic::flow_spec>& flows) {
  std::vector<std::uint8_t> klass(flows.size());
  for (const auto& flow : flows) klass[flow.flow_id] = flow.priority;
  class_latencies out;
  for (const auto& d : run.deliveries)
    (klass[d.flow_id] == 0 ? out.control : out.bulk).push_back(d.latency());
  return out;
}

}  // namespace

int main() {
  std::printf("=== Scheduler tuning: WFQ weights for a two-class service ===\n\n");
  auto ptm = examples::example_device_model();
  const auto topo = topo::make_fattree16(examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.04;
  const auto setup = examples::make_traffic_load(
      topo, routes, traffic::traffic_model::map, /*max link load=*/0.65,
      horizon, 21, /*classes=*/2);

  util::text_table table{{"scheduler", "control p99 (us)", "bulk p99 (us)",
                          "bulk penalty vs FIFO"}};
  double fifo_bulk_p99 = 0;
  struct candidate {
    std::string label;
    des::tm_config tm;
  };
  std::vector<candidate> candidates;
  candidates.push_back({"FIFO", {}});
  for (const double w : {1.0, 4.0, 9.0}) {
    des::tm_config tm;
    tm.kind = des::scheduler_kind::wfq;
    tm.classes = 2;
    tm.class_weights = {w, 1.0};
    candidates.push_back({"WFQ " + util::fmt(w, 0) + ":1", tm});
  }
  {
    des::tm_config tm;
    tm.kind = des::scheduler_kind::sp;
    tm.classes = 2;
    candidates.push_back({"SP", tm});
  }

  for (const auto& c : candidates) {
    core::scheduler_context ctx;
    ctx.kind = c.tm.kind;
    ctx.class_weights = c.tm.class_weights;
    ctx.bandwidth_bps = examples::link_bps;
    core::engine_config cfg;
    cfg.partitions = 4;
    // SEC measured counterproductive for multi-class schedulers at network
    // scale in this reproduction (EXPERIMENTS.md, Table 6 ablation).
    cfg.apply_sec = false;
    core::dqn_network net{topo, routes, ptm, ctx, cfg};
    const auto run = net.run(setup.streams, horizon);
    const auto split = split_by_class(run, setup.flows);
    const double control_p99 = stats::percentile(split.control, 0.99) * 1e6;
    const double bulk_p99 = stats::percentile(split.bulk, 0.99) * 1e6;
    if (fifo_bulk_p99 == 0) fifo_bulk_p99 = bulk_p99;
    table.add_row({c.label, util::fmt(control_p99, 1), util::fmt(bulk_p99, 1),
                   util::fmt(bulk_p99 / fifo_bulk_p99, 2) + "x"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("reading: increasing the control-class weight (or SP) cuts its "
              "tail latency; pick the smallest ratio whose control p99 meets "
              "your budget to minimise the bulk-class penalty.\n");
  return 0;
}
