// Topology design (the paper's §1 motivating task): connect 16 hosts with a
// Line, a 2-D Torus, or a FatTree — which gives the best latency profile
// under the same uniform-random traffic, and where are the hot spots?
//
// One trained device model drives all three candidate topologies — the
// arbitrary-topology generality of §6.1 — so the design sweep is pure
// inference.
#include "examples/example_util.hpp"

#include <algorithm>
#include <map>

using namespace dqn;

int main() {
  std::printf("=== Topology design: 16 hosts, three candidate fabrics ===\n\n");
  auto ptm = examples::example_device_model();
  const double horizon = 0.04;

  struct candidate {
    const char* name;
    topo::topology topo;
  };
  candidate candidates[] = {
      {"Line16", topo::make_line(16, examples::links())},
      {"2dTorus(4x4)", topo::make_torus2d(4, 4, examples::links())},
      {"FatTree16", topo::make_fattree16(examples::links())},
  };

  // Identical offered traffic for every candidate: the per-flow rate is
  // chosen so even the weakest fabric (the line) stays below saturation.
  double rate = 0;
  {
    const topo::routing line_routes{candidates[0].topo};
    util::rng rng{33};
    const auto flows =
        traffic::make_uniform_flows(candidates[0].topo.hosts().size(), 1, rng);
    rate = examples::calibrate_rate(candidates[0].topo, line_routes, flows,
                                    0.8, 712.0);
  }
  util::text_table table{{"topology", "switches", "links", "diameter",
                          "mean RTT (us)", "p99 RTT (us)", "hottest device"}};
  for (auto& c : candidates) {
    const topo::routing routes{c.topo};
    const auto setup = examples::make_traffic(
        c.topo, traffic::traffic_model::poisson, rate, horizon, 33);
    core::engine_config cfg;
    cfg.partitions = 4;
    cfg.record_hops = true;
    core::dqn_network net{c.topo, routes, ptm, core::scheduler_context{}, cfg};
    const auto run = net.run(setup.streams, horizon);
    const auto latencies = des::all_latencies(run);

    // Hottest device by total predicted queueing.
    std::map<topo::node_id, double> queueing;
    for (const auto& hop : run.hops)
      queueing[hop.device] += hop.departure - hop.arrival;
    const auto hottest = std::max_element(
        queueing.begin(), queueing.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });

    table.add_row({c.name, std::to_string(c.topo.devices().size()),
                   std::to_string(c.topo.link_count()),
                   std::to_string(c.topo.diameter()),
                   util::fmt(stats::mean(latencies) * 1e6, 1),
                   util::fmt(stats::percentile(latencies, 0.99) * 1e6, 1),
                   hottest != queueing.end()
                       ? c.topo.at(hottest->first).name
                       : std::string{"-"}});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("reading: the line concentrates transit traffic on its middle "
              "switches (long diameter, hot centre); the torus spreads load "
              "but pays multi-hop latency; the fat-tree wins on p99 at equal "
              "host count.\n");
  return 0;
}
