// Shared helpers for the example programs: a small cached device model and
// uniform-random traffic construction. Examples deliberately use only the
// public library API.
#pragma once

#include <cstdio>
#include <memory>

#include "core/dlib.hpp"
#include "core/dutil.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "des/network.hpp"
#include "stats/descriptive.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/table.hpp"

namespace dqn::examples {

inline constexpr double link_bps = 1e9;  // example networks use 1 Gbps links

inline topo::link_params links() {
  topo::link_params lp;
  lp.bandwidth_bps = link_bps;
  return lp;
}

// Train (once; cached on disk under ./dqn_models) a modest 8-port device
// model covering FIFO/SP/DRR/WFQ at loads 0.1-0.8 — the §5.2 recipe.
inline std::shared_ptr<const core::ptm_model> example_device_model() {
  core::dutil_config cfg;
  cfg.ports = 8;
  cfg.bandwidth_bps = link_bps;
  cfg.streams = 288;
  cfg.packets_per_stream = 600;
  cfg.ptm.time_steps = 12;
  cfg.ptm.mlp_hidden = {96, 48};
  cfg.ptm.epochs = 24;
  cfg.seed = 20220822;

  core::device_model_library lib;
  const std::string key =
      core::device_model_library::model_key(cfg.ptm.arch, cfg.ports, cfg.seed) +
      "_t12_n" + std::to_string(cfg.streams) + "_e" +
      std::to_string(cfg.ptm.epochs) + "_bw" +
      std::to_string(static_cast<long long>(cfg.bandwidth_bps / 1e6)) + "_f" +
      std::to_string(core::feature_count);
  auto model = lib.fetch_or_train(key, [&] {
    std::printf("[setup] training the device model once (cached in %s)...\n",
                lib.directory().string().c_str());
    auto bundle = core::train_device_model(cfg);
    std::printf("[setup] done in %.0fs\n", bundle.report.train_seconds);
    return std::move(bundle.model);
  });
  return std::make_shared<const core::ptm_model>(std::move(model));
}

struct traffic_setup {
  std::vector<traffic::flow_spec> flows;
  std::vector<traffic::packet_stream> streams;
  double per_flow_rate = 0;  // pps actually used
};

// Per-flow rate such that the most loaded link (flows routed per ECMP)
// carries `target_max_load` of its capacity.
inline double calibrate_rate(const topo::topology& topo, const topo::routing& routes,
                             const std::vector<traffic::flow_spec>& flows,
                             double target_max_load, double mean_packet_bytes) {
  const auto hosts = topo.hosts();
  std::vector<double> link_flows(topo.link_count(), 0.0);
  for (const auto& flow : flows) {
    const auto src = hosts.at(static_cast<std::size_t>(flow.src_host));
    const auto dst = hosts.at(static_cast<std::size_t>(flow.dst_host));
    const auto path = routes.flow_path(src, dst, flow.flow_id);
    for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
      const std::size_t port = routes.egress_port(path[hop], dst, flow.flow_id);
      link_flows[topo.peer_of(path[hop], port).link_index] += 1.0;
    }
  }
  double max_flows = 1.0;
  for (double f : link_flows) max_flows = std::max(max_flows, f);
  return target_max_load * link_bps / (max_flows * 8.0 * mean_packet_bytes);
}

inline traffic_setup make_traffic(const topo::topology& topo,
                                  traffic::traffic_model model,
                                  double per_flow_rate, double horizon,
                                  std::uint64_t seed, std::size_t classes = 1) {
  traffic_setup setup;
  util::rng rng{seed};
  const std::size_t hosts = topo.hosts().size();
  setup.flows = traffic::make_uniform_flows(hosts, classes, rng);
  setup.per_flow_rate = per_flow_rate;
  traffic::tg_util_config tg;
  tg.model = model;
  tg.per_flow_rate = per_flow_rate;
  tg.seed = seed;
  auto generators = traffic::make_generators(setup.flows, tg);
  setup.streams = traffic::per_host_streams(generators, hosts, horizon, rng);
  return setup;
}

// make_traffic with the rate calibrated to a target max-link load.
inline traffic_setup make_traffic_load(const topo::topology& topo,
                                       const topo::routing& routes,
                                       traffic::traffic_model model,
                                       double target_max_load, double horizon,
                                       std::uint64_t seed,
                                       std::size_t classes = 1) {
  util::rng rng{seed};
  const auto flows =
      traffic::make_uniform_flows(topo.hosts().size(), classes, rng);
  const double rate = calibrate_rate(topo, routes, flows, target_max_load,
                                     model == traffic::traffic_model::anarchy
                                         ? 380.0
                                         : 712.0);
  return make_traffic(topo, model, rate, horizon, seed, classes);
}

}  // namespace dqn::examples
