// Quickstart: the full DeepQueueNet workflow in ~60 lines of user code.
//
//   1. obtain a trained device model (DUtil trains one; DLib caches it),
//   2. describe a topology (here: a 4-switch line) and traffic,
//   3. compose the DeepQueueNet model and run it (SInit + SRun with IRSA),
//   4. compare against the packet-level DES oracle,
//   5. use packet-level visibility: inspect any device's egress trace.
#include "examples/example_util.hpp"

using namespace dqn;

int main() {
  std::printf("=== DeepQueueNet quickstart ===\n\n");

  // 1. Device model (trained once, then loaded from ./dqn_models).
  auto ptm = examples::example_device_model();

  // 2. Topology + routing + traffic: Line4, Poisson flows at ~30%% host load.
  const auto topo = topo::make_line(4, examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.05;
  const auto traffic_setup = examples::make_traffic_load(
      topo, routes, traffic::traffic_model::poisson, /*max link load=*/0.5,
      horizon, 7);

  // 3. DeepQueueNet inference.
  core::engine_config engine_cfg;
  engine_cfg.partitions = 2;
  engine_cfg.record_hops = true;
  core::dqn_network net{topo, routes, ptm, core::scheduler_context{}, engine_cfg};
  const auto prediction = net.run(traffic_setup.streams, horizon);
  std::printf("DeepQueueNet: %zu packets delivered in %.2fs wall time "
              "(%zu IRSA iterations; diameter bound %zu)\n",
              prediction.deliveries.size(), prediction.wall_seconds,
              net.stats().iterations, 1 + topo.diameter());

  // 4. Ground truth from the DES and accuracy summary.
  des::network oracle{topo, routes, {}};
  const auto truth = oracle.run(traffic_setup.streams, horizon);
  const auto cmp = core::compare_runs(truth, prediction, horizon / 10, 6);
  std::printf("DES oracle:   %zu packets delivered in %.2fs wall time\n\n",
              truth.deliveries.size(), truth.wall_seconds);
  std::printf("accuracy (normalized w1, lower is better):\n");
  std::printf("  avgRTT %.4f | p99RTT %.4f | avgJitter %.4f | p99Jitter %.4f\n",
              cmp.w1_avg_rtt, cmp.w1_p99_rtt, cmp.w1_avg_jitter,
              cmp.w1_p99_jitter);
  std::printf("  Pearson rho (avgRTT) = %.4f [%.4f, %.4f]\n\n",
              cmp.rho_avg_rtt.rho, cmp.rho_avg_rtt.ci_low,
              cmp.rho_avg_rtt.ci_high);

  // 5. Packet-level visibility: every device's egress stream is a packet
  //    trace any metric can be applied to — here, per-switch mean sojourn.
  std::printf("per-device predicted traffic (packet-level visibility):\n");
  for (const auto node : topo.devices()) {
    std::size_t packets = 0;
    for (std::size_t port = 0; port < topo.port_count(node); ++port)
      packets += net.egress_stream(node, port).size();
    std::printf("  %-4s forwarded %zu packets\n", topo.at(node).name.c_str(),
                packets);
  }
  std::printf("\ndone. Try examples/capacity_planning, scheduler_tuning, "
              "topology_design next.\n");
  return 0;
}
