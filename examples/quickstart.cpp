// Quickstart: the full DeepQueueNet workflow in ~60 lines of user code.
//
//   1. obtain a trained device model (DUtil trains one; DLib caches it),
//   2. describe a topology (here: a 4-switch line) and traffic,
//   3. compose the DeepQueueNet model and run it (SInit + SRun with IRSA),
//   4. compare against the packet-level DES oracle,
//   5. use packet-level visibility: inspect any device's egress trace.
//
// Run with `--json` for the profiled variant instead: a self-contained tiny
// pipeline (DUtil training + engine run + DES oracle) instrumented through
// one obs::sink, emitting the full registry snapshot as JSON on stdout —
// per-epoch PTM training loss, per-IRSA-iteration timings, DES counters.
// Two more profiling flags compose with it (each implies the profiled
// pipeline): `--chrome-trace <path>` writes the run's span timeline as
// Chrome trace-event JSON (load in chrome://tracing or ui.perfetto.dev),
// and `--journeys N` samples every packet's per-hop journey and prints the
// first N of them.
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "des/run_api.hpp"
#include "examples/example_util.hpp"
#include "obs/json.hpp"
#include "obs/sink.hpp"

using namespace dqn;

namespace {

struct profile_options {
  bool json = false;
  std::string chrome_trace;    // output path; empty = off
  std::size_t journeys = 0;    // print the first N traced journeys
  [[nodiscard]] bool any() const {
    return json || !chrome_trace.empty() || journeys > 0;
  }
};

// The profile mode (--json / --chrome-trace / --journeys). Deliberately
// trains a fresh tiny device model (no DLib cache) so the ptm.* per-epoch
// metrics are always present in the snapshot, then profiles a DeepQueueNet
// run and the DES oracle on the same scenario through the same sink. Only
// the requested documents go to stdout.
int run_profiled(const profile_options& options) {
  obs::sink sink;
  if (options.journeys > 0) sink.journeys().configure(/*sample_rate=*/1.0);

  core::dutil_config dutil_cfg;
  dutil_cfg.ports = 4;
  dutil_cfg.bandwidth_bps = examples::link_bps;
  dutil_cfg.streams = 30;
  dutil_cfg.packets_per_stream = 200;
  dutil_cfg.ptm.time_steps = 8;
  dutil_cfg.ptm.mlp_hidden = {24, 12};
  dutil_cfg.ptm.epochs = 8;
  dutil_cfg.seed = 7;
  dutil_cfg.sink = &sink;
  std::fprintf(stderr, "[profile] training a tiny device model...\n");
  auto bundle = core::train_device_model(dutil_cfg);
  auto ptm = std::make_shared<const core::ptm_model>(std::move(bundle.model));

  const auto topo = topo::make_line(3, examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.02;
  const auto traffic_setup = examples::make_traffic_load(
      topo, routes, traffic::traffic_model::poisson, /*max link load=*/0.4,
      horizon, 7);

  des::run_request request;
  request.host_streams = &traffic_setup.streams;
  request.horizon = horizon;
  request.sink = &sink;

  std::fprintf(stderr, "[profile] running DeepQueueNet inference...\n");
  core::engine_config engine_cfg;
  engine_cfg.with_partitions(2).with_sink(&sink);
  core::dqn_network net{topo, routes, ptm, core::scheduler_context{}, engine_cfg};
  (void)net.run(request);

  std::fprintf(stderr, "[profile] running the DES oracle...\n");
  des::network_config oracle_cfg;
  oracle_cfg.sink = &sink;
  des::network oracle{topo, routes, oracle_cfg};
  (void)oracle.run(request);

  if (options.json) {
    const std::string doc = sink.to_json();
    std::printf("%s\n", doc.c_str());
    if (!obs::json_is_valid(doc)) {
      std::fprintf(stderr, "[profile] snapshot failed JSON validation\n");
      return 1;
    }
  }
  if (!options.chrome_trace.empty()) {
    const std::string trace = sink.to_chrome_trace();
    if (!obs::json_is_valid(trace)) {
      std::fprintf(stderr, "[profile] chrome trace failed JSON validation\n");
      return 1;
    }
    std::ofstream out{options.chrome_trace};
    if (!out) {
      std::fprintf(stderr, "[profile] cannot open %s for writing\n",
                   options.chrome_trace.c_str());
      return 1;
    }
    out << trace;
    std::fprintf(stderr,
                 "[profile] wrote %zu spans to %s (open in chrome://tracing "
                 "or ui.perfetto.dev)\n",
                 sink.trace().size(), options.chrome_trace.c_str());
  }
  if (options.journeys > 0) {
    const auto journeys = sink.journeys().journeys();
    std::printf("journeys traced: %zu (showing up to %zu)\n", journeys.size(),
                options.journeys);
    std::size_t shown = 0;
    for (const auto& journey : journeys) {
      if (shown++ >= options.journeys) break;
      std::printf("  pid %llu flow %llu send %.6fs deliver %.6fs\n",
                  static_cast<unsigned long long>(journey.pid),
                  static_cast<unsigned long long>(journey.flow),
                  journey.send_time, journey.delivery_time);
      for (const auto& hop : journey.hops)
        std::printf("    device %lld q%llu arrive %.6fs raw +%.2gs "
                    "corrected +%.2gs depart %.6fs\n",
                    static_cast<long long>(hop.device),
                    static_cast<unsigned long long>(hop.queue), hop.arrival,
                    hop.raw_delay, hop.corrected_delay, hop.departure);
    }
  }
  std::fprintf(stderr, "[profile] %zu trace events captured\n",
               sink.trace().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  profile_options options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--chrome-trace" && i + 1 < argc) {
      options.chrome_trace = argv[++i];
    } else if (arg == "--journeys" && i + 1 < argc) {
      options.journeys = static_cast<std::size_t>(std::strtoull(
          argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: quickstart [--json] [--chrome-trace <path>] "
                   "[--journeys N]\n");
      return 2;
    }
  }
  if (options.any()) return run_profiled(options);

  std::printf("=== DeepQueueNet quickstart ===\n\n");

  // 1. Device model (trained once, then loaded from ./dqn_models).
  auto ptm = examples::example_device_model();

  // 2. Topology + routing + traffic: Line4, Poisson flows at ~30%% host load.
  const auto topo = topo::make_line(4, examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.05;
  const auto traffic_setup = examples::make_traffic_load(
      topo, routes, traffic::traffic_model::poisson, /*max link load=*/0.5,
      horizon, 7);

  // 3. DeepQueueNet inference.
  core::engine_config engine_cfg;
  engine_cfg.partitions = 2;
  engine_cfg.record_hops = true;
  core::dqn_network net{topo, routes, ptm, core::scheduler_context{}, engine_cfg};
  const auto prediction = net.run(traffic_setup.streams, horizon);
  std::printf("DeepQueueNet: %zu packets delivered in %.2fs wall time "
              "(%zu IRSA iterations; diameter bound %zu)\n",
              prediction.deliveries.size(), prediction.wall_seconds,
              net.stats().iterations, 1 + topo.diameter());

  // 4. Ground truth from the DES and accuracy summary.
  des::network oracle{topo, routes, {}};
  const auto truth = oracle.run(traffic_setup.streams, horizon);
  const auto cmp = core::compare_runs(truth, prediction, horizon / 10, 6);
  std::printf("DES oracle:   %zu packets delivered in %.2fs wall time\n\n",
              truth.deliveries.size(), truth.wall_seconds);
  std::printf("accuracy (normalized w1, lower is better):\n");
  std::printf("  avgRTT %.4f | p99RTT %.4f | avgJitter %.4f | p99Jitter %.4f\n",
              cmp.w1_avg_rtt, cmp.w1_p99_rtt, cmp.w1_avg_jitter,
              cmp.w1_p99_jitter);
  std::printf("  Pearson rho (avgRTT) = %.4f [%.4f, %.4f]\n\n",
              cmp.rho_avg_rtt.rho, cmp.rho_avg_rtt.ci_low,
              cmp.rho_avg_rtt.ci_high);

  // 5. Packet-level visibility: every device's egress stream is a packet
  //    trace any metric can be applied to — here, per-switch mean sojourn.
  std::printf("per-device predicted traffic (packet-level visibility):\n");
  for (const auto node : topo.devices()) {
    std::size_t packets = 0;
    for (std::size_t port = 0; port < topo.port_count(node); ++port)
      packets += net.egress_stream(node, port).size();
    std::printf("  %-4s forwarded %zu packets\n", topo.at(node).name.c_str(),
                packets);
  }
  std::printf("\ndone. Try examples/quickstart --json for a profiled run, or "
              "examples/capacity_planning, scheduler_tuning, topology_design "
              "next.\n");
  return 0;
}
