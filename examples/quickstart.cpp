// Quickstart: the full DeepQueueNet workflow in ~60 lines of user code.
//
//   1. obtain a trained device model (DUtil trains one; DLib caches it),
//   2. describe a topology (here: a 4-switch line) and traffic,
//   3. compose the DeepQueueNet model and run it (SInit + SRun with IRSA),
//   4. compare against the packet-level DES oracle,
//   5. use packet-level visibility: inspect any device's egress trace.
//
// Run with `--json` for the profiled variant instead: a self-contained tiny
// pipeline (DUtil training + engine run + DES oracle) instrumented through
// one obs::sink, emitting the full registry snapshot as JSON on stdout —
// per-epoch PTM training loss, per-IRSA-iteration timings, DES counters.
// Two more profiling flags compose with it (each implies the profiled
// pipeline): `--chrome-trace <path>` writes the run's span timeline as
// Chrome trace-event JSON (load in chrome://tracing or ui.perfetto.dev),
// and `--journeys N` samples every packet's per-hop journey and prints the
// first N of them.
//
// Estimator selection (des/estimator_factory.hpp):
//   --estimator NAME       run the prediction through "des", "deepqueuenet",
//                          or "fluid" instead of the default engine;
//   --delay-backend NAME   sojourn backend for DeepQueueNet runs: "ptm"
//                          (default), "analytical", or "tiered"
//                          (core/delay_provider.hpp);
//   --tiered-smoke         self-contained tiered-vs-PTM timing check: trains
//                          a tiny model, runs the same scenario on both
//                          backends, prints a one-line JSON summary.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "des/estimator_factory.hpp"
#include "des/run_api.hpp"
#include "examples/example_util.hpp"
#include "obs/json.hpp"
#include "obs/sink.hpp"

using namespace dqn;

namespace {

struct profile_options {
  bool json = false;
  std::string chrome_trace;    // output path; empty = off
  std::size_t journeys = 0;    // print the first N traced journeys
  [[nodiscard]] bool any() const {
    return json || !chrome_trace.empty() || journeys > 0;
  }
};

struct estimator_options {
  std::string estimator = "deepqueuenet";
  std::string delay_backend;  // empty = the engine default (ptm)
  bool tiered_smoke = false;
};

bool parse_backend(std::string_view name, des::delay_backend* out) {
  if (name == "ptm") *out = des::delay_backend::ptm;
  else if (name == "analytical") *out = des::delay_backend::analytical;
  else if (name == "tiered") *out = des::delay_backend::tiered;
  else return false;
  return true;
}

// --tiered-smoke: train a tiny model, run one scenario through the pure-PTM
// and the tiered backend (best of two runs each, same engine, same sink),
// and print a machine-readable one-line JSON summary. CI's perf-smoke job
// gates on analytical_fraction > 0 and tiered_wall <= ptm_wall * 1.10.
int run_tiered_smoke() {
  core::dutil_config dutil_cfg;
  dutil_cfg.ports = 4;
  dutil_cfg.bandwidth_bps = examples::link_bps;
  dutil_cfg.streams = 30;
  dutil_cfg.packets_per_stream = 200;
  dutil_cfg.ptm.time_steps = 8;
  dutil_cfg.ptm.mlp_hidden = {24, 12};
  dutil_cfg.ptm.epochs = 8;
  dutil_cfg.seed = 7;
  std::fprintf(stderr, "[tiered-smoke] training a tiny device model...\n");
  auto bundle = core::train_device_model(dutil_cfg);
  auto ptm = std::make_shared<const core::ptm_model>(std::move(bundle.model));

  // A 20-device fat-tree at 30% max-link load: most egress queues sit under
  // the default 0.35 utilization threshold, so the tiered run serves them
  // analytically and skips their DNN inference.
  const auto topo = topo::make_fattree16(examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.02;
  const auto traffic_setup = examples::make_traffic_load(
      topo, routes, traffic::traffic_model::poisson, /*max link load=*/0.3,
      horizon, 7);

  des::estimator_context context;
  context.topo = &topo;
  context.routes = &routes;
  context.ptm = ptm;
  context.engine.partitions = 2;
  const auto net = des::make_estimator("deepqueuenet", context);

  obs::sink sink;
  des::run_request request;
  request.host_streams = &traffic_setup.streams;
  request.horizon = horizon;
  request.sink = &sink;

  std::size_t ptm_deliveries = 0;
  std::size_t tiered_deliveries = 0;
  const auto best_wall = [&](des::delay_backend backend,
                             std::size_t* deliveries) {
    des::delay_policy policy;
    policy.backend = backend;
    request.delay = policy;
    double best = 0;
    for (int rep = 0; rep < 2; ++rep) {
      const auto result = net->run(request);
      *deliveries = result.deliveries.size();
      best = rep == 0 ? result.wall_seconds
                      : std::min(best, result.wall_seconds);
    }
    return best;
  };
  std::fprintf(stderr, "[tiered-smoke] running the pure-PTM backend...\n");
  const double ptm_wall = best_wall(des::delay_backend::ptm, &ptm_deliveries);
  std::fprintf(stderr, "[tiered-smoke] running the tiered backend...\n");
  const double tiered_wall =
      best_wall(des::delay_backend::tiered, &tiered_deliveries);
  const double fraction =
      sink.metrics().gauge("tiered.analytical_fraction");

  std::printf("{\"ptm_wall_seconds\": %.6f, \"tiered_wall_seconds\": %.6f, "
              "\"analytical_fraction\": %.4f, \"speedup\": %.3f, "
              "\"ptm_deliveries\": %zu, \"tiered_deliveries\": %zu}\n",
              ptm_wall, tiered_wall, fraction,
              tiered_wall > 0 ? ptm_wall / tiered_wall : 0.0, ptm_deliveries,
              tiered_deliveries);
  return 0;
}

// The profile mode (--json / --chrome-trace / --journeys). Deliberately
// trains a fresh tiny device model (no DLib cache) so the ptm.* per-epoch
// metrics are always present in the snapshot, then profiles a DeepQueueNet
// run and the DES oracle on the same scenario through the same sink. Only
// the requested documents go to stdout.
int run_profiled(const profile_options& options) {
  obs::sink sink;
  if (options.journeys > 0) sink.journeys().configure(/*sample_rate=*/1.0);

  core::dutil_config dutil_cfg;
  dutil_cfg.ports = 4;
  dutil_cfg.bandwidth_bps = examples::link_bps;
  dutil_cfg.streams = 30;
  dutil_cfg.packets_per_stream = 200;
  dutil_cfg.ptm.time_steps = 8;
  dutil_cfg.ptm.mlp_hidden = {24, 12};
  dutil_cfg.ptm.epochs = 8;
  dutil_cfg.seed = 7;
  dutil_cfg.sink = &sink;
  std::fprintf(stderr, "[profile] training a tiny device model...\n");
  auto bundle = core::train_device_model(dutil_cfg);
  auto ptm = std::make_shared<const core::ptm_model>(std::move(bundle.model));

  const auto topo = topo::make_line(3, examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.02;
  const auto traffic_setup = examples::make_traffic_load(
      topo, routes, traffic::traffic_model::poisson, /*max link load=*/0.4,
      horizon, 7);

  des::run_request request;
  request.host_streams = &traffic_setup.streams;
  request.horizon = horizon;
  request.sink = &sink;

  std::fprintf(stderr, "[profile] running DeepQueueNet inference...\n");
  des::estimator_context context;
  context.topo = &topo;
  context.routes = &routes;
  context.ptm = ptm;
  context.engine.with_partitions(2).with_sink(&sink);
  context.des.sink = &sink;
  const auto net = des::make_estimator("deepqueuenet", context);
  (void)net->run(request);

  std::fprintf(stderr, "[profile] running the DES oracle...\n");
  const auto oracle = des::make_estimator("des", context);
  (void)oracle->run(request);

  if (options.json) {
    const std::string doc = sink.to_json();
    std::printf("%s\n", doc.c_str());
    if (!obs::json_is_valid(doc)) {
      std::fprintf(stderr, "[profile] snapshot failed JSON validation\n");
      return 1;
    }
  }
  if (!options.chrome_trace.empty()) {
    const std::string trace = sink.to_chrome_trace();
    if (!obs::json_is_valid(trace)) {
      std::fprintf(stderr, "[profile] chrome trace failed JSON validation\n");
      return 1;
    }
    std::ofstream out{options.chrome_trace};
    if (!out) {
      std::fprintf(stderr, "[profile] cannot open %s for writing\n",
                   options.chrome_trace.c_str());
      return 1;
    }
    out << trace;
    std::fprintf(stderr,
                 "[profile] wrote %zu spans to %s (open in chrome://tracing "
                 "or ui.perfetto.dev)\n",
                 sink.trace().size(), options.chrome_trace.c_str());
  }
  if (options.journeys > 0) {
    const auto journeys = sink.journeys().journeys();
    std::printf("journeys traced: %zu (showing up to %zu)\n", journeys.size(),
                options.journeys);
    std::size_t shown = 0;
    for (const auto& journey : journeys) {
      if (shown++ >= options.journeys) break;
      std::printf("  pid %llu flow %llu send %.6fs deliver %.6fs\n",
                  static_cast<unsigned long long>(journey.pid),
                  static_cast<unsigned long long>(journey.flow),
                  journey.send_time, journey.delivery_time);
      for (const auto& hop : journey.hops)
        std::printf("    device %lld q%llu arrive %.6fs raw +%.2gs "
                    "corrected +%.2gs depart %.6fs\n",
                    static_cast<long long>(hop.device),
                    static_cast<unsigned long long>(hop.queue), hop.arrival,
                    hop.raw_delay, hop.corrected_delay, hop.departure);
    }
  }
  std::fprintf(stderr, "[profile] %zu trace events captured\n",
               sink.trace().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  profile_options options;
  estimator_options est_options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--chrome-trace" && i + 1 < argc) {
      options.chrome_trace = argv[++i];
    } else if (arg == "--journeys" && i + 1 < argc) {
      options.journeys = static_cast<std::size_t>(std::strtoull(
          argv[++i], nullptr, 10));
    } else if (arg == "--estimator" && i + 1 < argc) {
      est_options.estimator = argv[++i];
    } else if (arg == "--delay-backend" && i + 1 < argc) {
      est_options.delay_backend = argv[++i];
    } else if (arg == "--tiered-smoke") {
      est_options.tiered_smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: quickstart [--json] [--chrome-trace <path>] "
                   "[--journeys N] [--estimator des|deepqueuenet|fluid] "
                   "[--delay-backend ptm|analytical|tiered] [--tiered-smoke]\n");
      return 2;
    }
  }
  des::delay_backend backend = des::delay_backend::ptm;
  if (!est_options.delay_backend.empty() &&
      !parse_backend(est_options.delay_backend, &backend)) {
    std::fprintf(stderr, "unknown --delay-backend \"%s\" (ptm | analytical | "
                 "tiered)\n", est_options.delay_backend.c_str());
    return 2;
  }
  if (est_options.estimator != "dqn") {
    // Reject unknown / needs-training estimator names before spending
    // minutes training the device model; make_estimator's message names the
    // alternatives (and the training entry points for routenet/mimicnet).
    const auto known = des::estimator_names();
    if (std::find(known.begin(), known.end(), est_options.estimator) ==
        known.end()) {
      try {
        (void)des::make_estimator(est_options.estimator, {});
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
      }
    }
  }
  if (est_options.tiered_smoke) return run_tiered_smoke();
  if (options.any()) return run_profiled(options);

  std::printf("=== DeepQueueNet quickstart ===\n\n");

  // 1. Device model (trained once, then loaded from ./dqn_models).
  auto ptm = examples::example_device_model();

  // 2. Topology + routing + traffic: Line4, Poisson flows at ~30%% host load.
  const auto topo = topo::make_line(4, examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.05;
  const auto traffic_setup = examples::make_traffic_load(
      topo, routes, traffic::traffic_model::poisson, /*max link load=*/0.5,
      horizon, 7);

  // 3. Estimation through the factory (des/estimator_factory.hpp): the
  //    default is the DeepQueueNet engine, but --estimator swaps in the DES
  //    or the fluid baseline behind the same run contract, and
  //    --delay-backend selects the engine's sojourn backend.
  const std::vector<double> flow_rates(traffic_setup.flows.size(),
                                       traffic_setup.per_flow_rate);
  des::estimator_context context;
  context.topo = &topo;
  context.routes = &routes;
  context.ptm = ptm;
  context.engine.partitions = 2;
  context.engine.record_hops = true;
  context.engine.delay.backend = backend;
  context.flows = &traffic_setup.flows;
  context.flow_rates_pps = &flow_rates;
  context.mean_packet_size = 712.0;  // poisson traffic's mean packet size
  const auto estimator = des::make_estimator(est_options.estimator, context);

  des::run_request request;
  request.host_streams = &traffic_setup.streams;
  request.horizon = horizon;
  const auto prediction = estimator->run(request);
  const auto* net = dynamic_cast<const core::dqn_network*>(estimator.get());
  if (net != nullptr) {
    std::printf("DeepQueueNet (%s backend): %zu packets delivered in %.2fs "
                "wall time (%zu IRSA iterations; diameter bound %zu)\n",
                to_string(backend), prediction.deliveries.size(),
                prediction.wall_seconds, net->stats().iterations,
                1 + topo.diameter());
  } else {
    std::printf("%s: %zu packets delivered in %.2fs wall time\n",
                estimator->estimator_name(), prediction.deliveries.size(),
                prediction.wall_seconds);
  }

  // 4. Ground truth from the DES and accuracy summary.
  const auto oracle = des::make_estimator("des", context);
  const auto truth = oracle->run(request);
  const auto cmp = core::compare_runs(truth, prediction, horizon / 10, 6);
  std::printf("DES oracle:   %zu packets delivered in %.2fs wall time\n\n",
              truth.deliveries.size(), truth.wall_seconds);
  std::printf("accuracy (normalized w1, lower is better):\n");
  std::printf("  avgRTT %.4f | p99RTT %.4f | avgJitter %.4f | p99Jitter %.4f\n",
              cmp.w1_avg_rtt, cmp.w1_p99_rtt, cmp.w1_avg_jitter,
              cmp.w1_p99_jitter);
  std::printf("  Pearson rho (avgRTT) = %.4f [%.4f, %.4f]\n\n",
              cmp.rho_avg_rtt.rho, cmp.rho_avg_rtt.ci_low,
              cmp.rho_avg_rtt.ci_high);

  // 5. Packet-level visibility (DeepQueueNet runs only): every device's
  //    egress stream is a packet trace any metric can be applied to.
  if (net != nullptr) {
    std::printf("per-device predicted traffic (packet-level visibility):\n");
    for (const auto node : topo.devices()) {
      std::size_t packets = 0;
      for (std::size_t port = 0; port < topo.port_count(node); ++port)
        packets += net->egress_stream(node, port).size();
      std::printf("  %-4s forwarded %zu packets\n", topo.at(node).name.c_str(),
                  packets);
    }
  }
  std::printf("\ndone. Try examples/quickstart --json for a profiled run, or "
              "examples/capacity_planning, scheduler_tuning, topology_design "
              "next.\n");
  return 0;
}
