// Quickstart: the full DeepQueueNet workflow in ~60 lines of user code.
//
//   1. obtain a trained device model (DUtil trains one; DLib caches it),
//   2. describe a topology (here: a 4-switch line) and traffic,
//   3. compose the DeepQueueNet model and run it (SInit + SRun with IRSA),
//   4. compare against the packet-level DES oracle,
//   5. use packet-level visibility: inspect any device's egress trace.
//
// Run with `--json` for the profiled variant instead: a self-contained tiny
// pipeline (DUtil training + engine run + DES oracle) instrumented through
// one obs::sink, emitting the full registry snapshot as JSON on stdout —
// per-epoch PTM training loss, per-IRSA-iteration timings, DES counters.
// Two more profiling flags compose with it (each implies the profiled
// pipeline): `--chrome-trace <path>` writes the run's span timeline as
// Chrome trace-event JSON (load in chrome://tracing or ui.perfetto.dev),
// and `--journeys N` samples every packet's per-hop journey and prints the
// first N of them.
//
// Estimator selection (des/estimator_factory.hpp):
//   --estimator NAME       run the prediction through "des", "deepqueuenet",
//                          or "fluid" instead of the default engine;
//   --delay-backend NAME   sojourn backend for DeepQueueNet runs: "ptm"
//                          (default), "analytical", or "tiered"
//                          (core/delay_provider.hpp);
//   --tiered-smoke         self-contained tiered-vs-PTM timing check: trains
//                          a tiny model, runs the same scenario on both
//                          backends, prints a one-line JSON summary;
//   --threads N            engine worker count (sharded work-stealing
//                          scheduler; default 2). With --json the snapshot
//                          also carries quickstart.measured_* gauges:
//                          measured wall at 1 and N workers plus speedup.
//
// Live telemetry (obs/telemetry/):
//   --metrics-port P       start the sink's background sampler and serve
//                          /metrics, /snapshot, /series, /runs, /healthz on
//                          127.0.0.1:P (0 = pick an ephemeral port; the
//                          bound one is printed to stderr);
//   --serve-hold           after the workflow finishes, keep serving until
//                          SIGTERM/SIGINT, then shut down cleanly (exit 0);
//   --strict-obs           after the run, fail (exit 3) if observability
//                          reported data loss — dropped trace events or
//                          logged contract violations;
//   --telemetry-smoke      sampler-overhead check: same scenario run with
//                          telemetry off and on (best of 3 each), one-line
//                          JSON summary. CI's perf-smoke job gates on the
//                          overhead fraction.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>

#include "des/estimator_factory.hpp"
#include "des/run_api.hpp"
#include "examples/example_util.hpp"
#include "obs/json.hpp"
#include "obs/sink.hpp"
#include "obs/telemetry/telemetry.hpp"

using namespace dqn;

namespace {

struct profile_options {
  bool json = false;
  std::string chrome_trace;    // output path; empty = off
  std::size_t journeys = 0;    // print the first N traced journeys
  [[nodiscard]] bool any() const {
    return json || !chrome_trace.empty() || journeys > 0;
  }
};

struct estimator_options {
  std::string estimator = "deepqueuenet";
  std::string delay_backend;  // empty = the engine default (ptm)
  bool tiered_smoke = false;
  // --threads N: engine worker count (engine_config::with_partitions over
  // the sharded work-stealing scheduler). 0 = the quickstart default (2).
  std::size_t threads = 0;
};

struct telemetry_options {
  int metrics_port = -1;  // -1 = no telemetry plane
  bool serve_hold = false;
  bool strict_obs = false;
  bool telemetry_smoke = false;
};

std::sig_atomic_t volatile g_shutdown_requested = 0;

extern "C" void quickstart_handle_signal(int) { g_shutdown_requested = 1; }

// Start the live telemetry plane on `sink` per --metrics-port and report
// where it serves. Returns the plane (owned by the sink) or nullptr.
obs::telemetry::telemetry_plane* start_telemetry(
    obs::sink& sink, const telemetry_options& options) {
  // Install the shutdown handlers up front, not when hold_and_serve() is
  // reached: a supervisor may SIGTERM while the demo pipeline is still
  // running, and that must still be the clean exit path (hold_and_serve
  // sees the flag already set and returns immediately).
  if (options.serve_hold) {
    std::signal(SIGTERM, quickstart_handle_signal);
    std::signal(SIGINT, quickstart_handle_signal);
  }
  if (options.metrics_port < 0) return nullptr;
  auto config = obs::telemetry::telemetry_config{}
                    .with_enabled(true)
                    .with_metrics_port(options.metrics_port);
  auto* plane = sink.start_telemetry(config);
  if (plane != nullptr && plane->metrics_port() >= 0)
    std::fprintf(stderr,
                 "[telemetry] serving http://127.0.0.1:%d/ "
                 "(/metrics /snapshot /series /runs /healthz)\n",
                 plane->metrics_port());
  return plane;
}

// --serve-hold: block until SIGTERM/SIGINT, then stop the plane. The clean
// exit path is asserted by CI's telemetry smoke (kill -TERM; wait; rc == 0).
void hold_and_serve(obs::sink& sink) {
  std::fprintf(stderr, "[telemetry] holding; send SIGTERM to exit\n");
  while (g_shutdown_requested == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds{50});
  std::fprintf(stderr, "[telemetry] shutdown requested; stopping plane\n");
  sink.stop_telemetry();
}

// --strict-obs: non-zero exit when the summary carries a data-loss WARNING
// footer (dropped trace events / contract violations).
int strict_obs_verdict(const obs::sink& sink) {
  const auto table = sink.summary_table();
  if (table.footer().empty()) return 0;
  for (const auto& line : table.footer())
    std::fprintf(stderr, "[strict-obs] %s\n", line.c_str());
  return 3;
}

bool parse_backend(std::string_view name, des::delay_backend* out) {
  if (name == "ptm") *out = des::delay_backend::ptm;
  else if (name == "analytical") *out = des::delay_backend::analytical;
  else if (name == "tiered") *out = des::delay_backend::tiered;
  else return false;
  return true;
}

// --tiered-smoke: train a tiny model, run one scenario through the pure-PTM
// and the tiered backend (best of two runs each, same engine, same sink),
// and print a machine-readable one-line JSON summary. CI's perf-smoke job
// gates on analytical_fraction > 0 and tiered_wall <= ptm_wall * 1.10.
int run_tiered_smoke() {
  core::dutil_config dutil_cfg;
  dutil_cfg.ports = 4;
  dutil_cfg.bandwidth_bps = examples::link_bps;
  dutil_cfg.streams = 30;
  dutil_cfg.packets_per_stream = 200;
  dutil_cfg.ptm.time_steps = 8;
  dutil_cfg.ptm.mlp_hidden = {24, 12};
  dutil_cfg.ptm.epochs = 8;
  dutil_cfg.seed = 7;
  std::fprintf(stderr, "[tiered-smoke] training a tiny device model...\n");
  auto bundle = core::train_device_model(dutil_cfg);
  auto ptm = std::make_shared<const core::ptm_model>(std::move(bundle.model));

  // A 20-device fat-tree at 30% max-link load: most egress queues sit under
  // the default 0.35 utilization threshold, so the tiered run serves them
  // analytically and skips their DNN inference.
  const auto topo = topo::make_fattree16(examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.02;
  const auto traffic_setup = examples::make_traffic_load(
      topo, routes, traffic::traffic_model::poisson, /*max link load=*/0.3,
      horizon, 7);

  des::estimator_context context;
  context.topo = &topo;
  context.routes = &routes;
  context.ptm = ptm;
  context.engine.partitions = 2;
  const auto net = des::make_estimator("deepqueuenet", context);

  obs::sink sink;
  des::run_request request;
  request.host_streams = &traffic_setup.streams;
  request.horizon = horizon;
  request.sink = &sink;

  std::size_t ptm_deliveries = 0;
  std::size_t tiered_deliveries = 0;
  const auto best_wall = [&](des::delay_backend backend,
                             std::size_t* deliveries) {
    des::delay_policy policy;
    policy.backend = backend;
    request.delay = policy;
    double best = 0;
    for (int rep = 0; rep < 2; ++rep) {
      const auto result = net->run(request);
      *deliveries = result.deliveries.size();
      best = rep == 0 ? result.wall_seconds
                      : std::min(best, result.wall_seconds);
    }
    return best;
  };
  std::fprintf(stderr, "[tiered-smoke] running the pure-PTM backend...\n");
  const double ptm_wall = best_wall(des::delay_backend::ptm, &ptm_deliveries);
  std::fprintf(stderr, "[tiered-smoke] running the tiered backend...\n");
  const double tiered_wall =
      best_wall(des::delay_backend::tiered, &tiered_deliveries);
  const double fraction =
      sink.metrics().gauge("tiered.analytical_fraction");

  std::printf("{\"ptm_wall_seconds\": %.6f, \"tiered_wall_seconds\": %.6f, "
              "\"analytical_fraction\": %.4f, \"speedup\": %.3f, "
              "\"ptm_deliveries\": %zu, \"tiered_deliveries\": %zu}\n",
              ptm_wall, tiered_wall, fraction,
              tiered_wall > 0 ? ptm_wall / tiered_wall : 0.0, ptm_deliveries,
              tiered_deliveries);
  return 0;
}

// --telemetry-smoke: measure what the live telemetry plane costs a run.
// Trains a tiny model, then runs the same FatTree16 scenario with telemetry
// off and on (best of 3 each, same estimator, separate sinks so the only
// delta is the plane itself: 25 ms sampler + bound-but-unscraped endpoint).
// CI's perf-smoke job gates on overhead_fraction.
int run_telemetry_smoke() {
  core::dutil_config dutil_cfg;
  dutil_cfg.ports = 4;
  dutil_cfg.bandwidth_bps = examples::link_bps;
  dutil_cfg.streams = 30;
  dutil_cfg.packets_per_stream = 200;
  dutil_cfg.ptm.time_steps = 8;
  dutil_cfg.ptm.mlp_hidden = {24, 12};
  dutil_cfg.ptm.epochs = 8;
  dutil_cfg.seed = 7;
  std::fprintf(stderr, "[telemetry-smoke] training a tiny device model...\n");
  auto bundle = core::train_device_model(dutil_cfg);
  auto ptm = std::make_shared<const core::ptm_model>(std::move(bundle.model));

  const auto topo = topo::make_fattree16(examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.02;
  const auto traffic_setup = examples::make_traffic_load(
      topo, routes, traffic::traffic_model::poisson, /*max link load=*/0.3,
      horizon, 7);

  des::estimator_context context;
  context.topo = &topo;
  context.routes = &routes;
  context.ptm = ptm;
  context.engine.partitions = 2;
  const auto net = des::make_estimator("deepqueuenet", context);

  des::run_request request;
  request.host_streams = &traffic_setup.streams;
  request.horizon = horizon;

  std::size_t deliveries = 0;
  const auto best_wall = [&](obs::sink* sink) {
    request.sink = sink;
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto result = net->run(request);
      deliveries = result.deliveries.size();
      best = rep == 0 ? result.wall_seconds
                      : std::min(best, result.wall_seconds);
    }
    return best;
  };

  std::fprintf(stderr, "[telemetry-smoke] running with telemetry off...\n");
  obs::sink off_sink;
  const double off_wall = best_wall(&off_sink);

  std::fprintf(stderr, "[telemetry-smoke] running with telemetry on...\n");
  obs::sink on_sink;
  const auto config = obs::telemetry::telemetry_config{}
                          .with_enabled(true)
                          .with_sample_period_ms(25)
                          .with_metrics_port(0);
  auto* plane = on_sink.start_telemetry(config);
  const double on_wall = best_wall(&on_sink);

  const std::uint64_t samples = plane->sampler().samples();
  const std::string exposition = plane->render_metrics();
  const bool exposition_ok =
      exposition.find("# TYPE engine_deliveries counter") != std::string::npos &&
      exposition.find("process_rss_bytes") != std::string::npos;
  on_sink.stop_telemetry();

  const double overhead = off_wall > 0 ? on_wall / off_wall - 1.0 : 0.0;
  std::printf("{\"off_wall_seconds\": %.6f, \"on_wall_seconds\": %.6f, "
              "\"overhead_fraction\": %.4f, \"samples\": %llu, "
              "\"exposition_ok\": %s, \"deliveries\": %zu}\n",
              off_wall, on_wall, overhead,
              static_cast<unsigned long long>(samples),
              exposition_ok ? "true" : "false", deliveries);
  return exposition_ok ? 0 : 1;
}

// The profile mode (--json / --chrome-trace / --journeys). Deliberately
// trains a fresh tiny device model (no DLib cache) so the ptm.* per-epoch
// metrics are always present in the snapshot, then profiles a DeepQueueNet
// run and the DES oracle on the same scenario through the same sink, and
// finally measures the sharded engine's wall-clock speedup at `threads`
// workers versus 1 (quickstart.measured_* gauges in the JSON snapshot).
// Only the requested documents go to stdout.
int run_profiled(const profile_options& options, std::size_t threads) {
  obs::sink sink;
  if (options.journeys > 0) sink.journeys().configure(/*sample_rate=*/1.0);

  core::dutil_config dutil_cfg;
  dutil_cfg.ports = 4;
  dutil_cfg.bandwidth_bps = examples::link_bps;
  dutil_cfg.streams = 30;
  dutil_cfg.packets_per_stream = 200;
  dutil_cfg.ptm.time_steps = 8;
  dutil_cfg.ptm.mlp_hidden = {24, 12};
  dutil_cfg.ptm.epochs = 8;
  dutil_cfg.seed = 7;
  dutil_cfg.sink = &sink;
  std::fprintf(stderr, "[profile] training a tiny device model...\n");
  auto bundle = core::train_device_model(dutil_cfg);
  auto ptm = std::make_shared<const core::ptm_model>(std::move(bundle.model));

  const auto topo = topo::make_line(3, examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.02;
  const auto traffic_setup = examples::make_traffic_load(
      topo, routes, traffic::traffic_model::poisson, /*max link load=*/0.4,
      horizon, 7);

  des::run_request request;
  request.host_streams = &traffic_setup.streams;
  request.horizon = horizon;
  request.sink = &sink;

  std::fprintf(stderr, "[profile] running DeepQueueNet inference...\n");
  des::estimator_context context;
  context.topo = &topo;
  context.routes = &routes;
  context.ptm = ptm;
  context.engine.with_partitions(2).with_sink(&sink);
  context.des.sink = &sink;
  const auto net = des::make_estimator("deepqueuenet", context);
  (void)net->run(request);

  std::fprintf(stderr, "[profile] running the DES oracle...\n");
  const auto oracle = des::make_estimator("des", context);
  (void)oracle->run(request);

  // Measured multi-worker speedup (wall clock, not projected): the same
  // engine and scenario at 1 worker and at `threads` workers, best of 2
  // each, through run_request::threads. On a single-core machine the ratio
  // is ~1; CI's perf gate runs the Table-7 bench on a multi-core runner.
  {
    const std::size_t workers = threads > 0 ? threads : 2;
    const auto best_wall = [&](std::size_t n) {
      request.threads = n;
      double best = 0;
      for (int rep = 0; rep < 2; ++rep) {
        const auto result = net->run(request);
        best = rep == 0 ? result.wall_seconds
                        : std::min(best, result.wall_seconds);
      }
      return best;
    };
    std::fprintf(stderr,
                 "[profile] measuring wall-clock speedup at %zu workers...\n",
                 workers);
    const double single_wall = best_wall(1);
    const double multi_wall = best_wall(workers);
    request.threads = 0;
    sink.gauge("quickstart.threads", static_cast<double>(workers));
    sink.gauge("quickstart.measured_wall_w1_seconds", single_wall);
    sink.gauge("quickstart.measured_wall_seconds", multi_wall);
    sink.gauge("quickstart.measured_speedup",
               multi_wall > 0 ? single_wall / multi_wall : 0.0);
    std::fprintf(stderr,
                 "[profile] measured wall: 1 worker %.4fs, %zu workers %.4fs "
                 "(%.2fx)\n",
                 single_wall, workers, multi_wall,
                 multi_wall > 0 ? single_wall / multi_wall : 0.0);
  }

  if (options.json) {
    const std::string doc = sink.to_json();
    std::printf("%s\n", doc.c_str());
    if (!obs::json_is_valid(doc)) {
      std::fprintf(stderr, "[profile] snapshot failed JSON validation\n");
      return 1;
    }
  }
  if (!options.chrome_trace.empty()) {
    const std::string trace = sink.to_chrome_trace();
    if (!obs::json_is_valid(trace)) {
      std::fprintf(stderr, "[profile] chrome trace failed JSON validation\n");
      return 1;
    }
    std::ofstream out{options.chrome_trace};
    if (!out) {
      std::fprintf(stderr, "[profile] cannot open %s for writing\n",
                   options.chrome_trace.c_str());
      return 1;
    }
    out << trace;
    std::fprintf(stderr,
                 "[profile] wrote %zu spans to %s (open in chrome://tracing "
                 "or ui.perfetto.dev)\n",
                 sink.trace().size(), options.chrome_trace.c_str());
  }
  if (options.journeys > 0) {
    const auto journeys = sink.journeys().journeys();
    std::printf("journeys traced: %zu (showing up to %zu)\n", journeys.size(),
                options.journeys);
    std::size_t shown = 0;
    for (const auto& journey : journeys) {
      if (shown++ >= options.journeys) break;
      std::printf("  pid %llu flow %llu send %.6fs deliver %.6fs\n",
                  static_cast<unsigned long long>(journey.pid),
                  static_cast<unsigned long long>(journey.flow),
                  journey.send_time, journey.delivery_time);
      for (const auto& hop : journey.hops)
        std::printf("    device %lld q%llu arrive %.6fs raw +%.2gs "
                    "corrected +%.2gs depart %.6fs\n",
                    static_cast<long long>(hop.device),
                    static_cast<unsigned long long>(hop.queue), hop.arrival,
                    hop.raw_delay, hop.corrected_delay, hop.departure);
    }
  }
  std::fprintf(stderr, "[profile] %zu trace events captured\n",
               sink.trace().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  profile_options options;
  estimator_options est_options;
  telemetry_options tele_options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--chrome-trace" && i + 1 < argc) {
      options.chrome_trace = argv[++i];
    } else if (arg == "--journeys" && i + 1 < argc) {
      options.journeys = static_cast<std::size_t>(std::strtoull(
          argv[++i], nullptr, 10));
    } else if (arg == "--estimator" && i + 1 < argc) {
      est_options.estimator = argv[++i];
    } else if (arg == "--delay-backend" && i + 1 < argc) {
      est_options.delay_backend = argv[++i];
    } else if (arg == "--tiered-smoke") {
      est_options.tiered_smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      est_options.threads = static_cast<std::size_t>(std::strtoull(
          argv[++i], nullptr, 10));
      if (est_options.threads == 0) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
    } else if (arg == "--metrics-port" && i + 1 < argc) {
      tele_options.metrics_port =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--serve-hold") {
      tele_options.serve_hold = true;
    } else if (arg == "--strict-obs") {
      tele_options.strict_obs = true;
    } else if (arg == "--telemetry-smoke") {
      tele_options.telemetry_smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: quickstart [--json] [--chrome-trace <path>] "
                   "[--journeys N] [--threads N] "
                   "[--estimator des|deepqueuenet|fluid] "
                   "[--delay-backend ptm|analytical|tiered] [--tiered-smoke] "
                   "[--metrics-port P] [--serve-hold] [--strict-obs] "
                   "[--telemetry-smoke]\n");
      return 2;
    }
  }
  des::delay_backend backend = des::delay_backend::ptm;
  if (!est_options.delay_backend.empty() &&
      !parse_backend(est_options.delay_backend, &backend)) {
    std::fprintf(stderr, "unknown --delay-backend \"%s\" (ptm | analytical | "
                 "tiered)\n", est_options.delay_backend.c_str());
    return 2;
  }
  if (est_options.estimator != "dqn") {
    // Reject unknown / needs-training estimator names before spending
    // minutes training the device model; make_estimator's message names the
    // alternatives (and the training entry points for routenet/mimicnet).
    const auto known = des::estimator_names();
    if (std::find(known.begin(), known.end(), est_options.estimator) ==
        known.end()) {
      try {
        (void)des::make_estimator(est_options.estimator, {});
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
      }
    }
  }
  if (est_options.tiered_smoke) return run_tiered_smoke();
  if (tele_options.telemetry_smoke) return run_telemetry_smoke();
  if (options.any()) return run_profiled(options, est_options.threads);

  std::printf("=== DeepQueueNet quickstart ===\n\n");

  // One sink for the whole workflow when telemetry / strict-obs is on; the
  // plane (sampler + endpoint) rides on it for the process lifetime.
  obs::sink sink;
  const bool instrumented =
      tele_options.metrics_port >= 0 || tele_options.strict_obs;
  start_telemetry(sink, tele_options);

  // 1. Device model (trained once, then loaded from ./dqn_models).
  auto ptm = examples::example_device_model();

  // 2. Topology + routing + traffic: Line4, Poisson flows at ~30%% host load.
  const auto topo = topo::make_line(4, examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.05;
  const auto traffic_setup = examples::make_traffic_load(
      topo, routes, traffic::traffic_model::poisson, /*max link load=*/0.5,
      horizon, 7);

  // 3. Estimation through the factory (des/estimator_factory.hpp): the
  //    default is the DeepQueueNet engine, but --estimator swaps in the DES
  //    or the fluid baseline behind the same run contract, and
  //    --delay-backend selects the engine's sojourn backend.
  const std::vector<double> flow_rates(traffic_setup.flows.size(),
                                       traffic_setup.per_flow_rate);
  des::estimator_context context;
  context.topo = &topo;
  context.routes = &routes;
  context.ptm = ptm;
  context.engine.partitions =
      est_options.threads > 0 ? est_options.threads : 2;
  context.engine.record_hops = true;
  context.engine.delay.backend = backend;
  context.flows = &traffic_setup.flows;
  context.flow_rates_pps = &flow_rates;
  context.mean_packet_size = 712.0;  // poisson traffic's mean packet size
  if (instrumented) {
    context.engine.sink = &sink;
    context.des.sink = &sink;
  }
  const auto estimator = des::make_estimator(est_options.estimator, context);

  des::run_request request;
  request.host_streams = &traffic_setup.streams;
  request.horizon = horizon;
  if (instrumented) request.sink = &sink;
  const auto prediction = estimator->run(request);
  const auto* net = dynamic_cast<const core::dqn_network*>(estimator.get());
  if (net != nullptr) {
    std::printf("DeepQueueNet (%s backend): %zu packets delivered in %.2fs "
                "wall time (%zu IRSA iterations; %zu workers; diameter "
                "bound %zu)\n",
                to_string(backend), prediction.deliveries.size(),
                prediction.wall_seconds, net->stats().iterations,
                net->stats().workers, 1 + topo.diameter());
  } else {
    std::printf("%s: %zu packets delivered in %.2fs wall time\n",
                estimator->estimator_name(), prediction.deliveries.size(),
                prediction.wall_seconds);
  }

  // 4. Ground truth from the DES and accuracy summary.
  const auto oracle = des::make_estimator("des", context);
  const auto truth = oracle->run(request);
  const auto cmp = core::compare_runs(truth, prediction, horizon / 10, 6);
  std::printf("DES oracle:   %zu packets delivered in %.2fs wall time\n\n",
              truth.deliveries.size(), truth.wall_seconds);
  std::printf("accuracy (normalized w1, lower is better):\n");
  std::printf("  avgRTT %.4f | p99RTT %.4f | avgJitter %.4f | p99Jitter %.4f\n",
              cmp.w1_avg_rtt, cmp.w1_p99_rtt, cmp.w1_avg_jitter,
              cmp.w1_p99_jitter);
  std::printf("  Pearson rho (avgRTT) = %.4f [%.4f, %.4f]\n\n",
              cmp.rho_avg_rtt.rho, cmp.rho_avg_rtt.ci_low,
              cmp.rho_avg_rtt.ci_high);

  // 5. Packet-level visibility (DeepQueueNet runs only): every device's
  //    egress stream is a packet trace any metric can be applied to.
  if (net != nullptr) {
    std::printf("per-device predicted traffic (packet-level visibility):\n");
    for (const auto node : topo.devices()) {
      std::size_t packets = 0;
      for (std::size_t port = 0; port < topo.port_count(node); ++port)
        packets += net->egress_stream(node, port).size();
      std::printf("  %-4s forwarded %zu packets\n", topo.at(node).name.c_str(),
                  packets);
    }
  }
  std::printf("\ndone. Try examples/quickstart --json for a profiled run, or "
              "examples/capacity_planning, scheduler_tuning, topology_design "
              "next.\n");
  if (tele_options.serve_hold) hold_and_serve(sink);
  if (tele_options.strict_obs) return strict_obs_verdict(sink);
  return 0;
}
