// WAN SLA verification: Abilene (real fibre-route propagation delays) under
// bursty MAP traffic. The operator wants per-city-pair p99 one-way delays
// against a geography-aware SLA, plus exportable packet traces for offline
// audit (trace CSV — the same interface TGUtil accepts as input).
#include "examples/example_util.hpp"

#include <algorithm>

#include "traffic/trace_io.hpp"

using namespace dqn;

int main() {
  std::printf("=== WAN SLA check on Abilene (geographic propagation) ===\n\n");
  auto ptm = examples::example_device_model();
  const auto topo = topo::make_abilene(examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.25;
  const auto setup = examples::make_traffic_load(
      topo, routes, traffic::traffic_model::map, /*max link load=*/0.5, horizon,
      77);

  core::engine_config cfg;
  cfg.partitions = 4;
  core::dqn_network net{topo, routes, ptm, core::scheduler_context{}, cfg};
  const auto run = net.run(setup.streams, horizon);

  // Per-flow (city-pair) p99 against an SLA of propagation + 2 ms budget.
  const auto hosts = topo.hosts();
  util::text_table table{{"flow", "route", "p99 delay (ms)", "SLA (ms)", "ok?"}};
  const auto per_flow = des::per_flow_latencies(run);
  for (const auto& flow : setup.flows) {
    const auto it = per_flow.find(flow.flow_id);
    if (it == per_flow.end() || it->second.size() < 20) continue;
    const auto src = hosts.at(static_cast<std::size_t>(flow.src_host));
    const auto dst = hosts.at(static_cast<std::size_t>(flow.dst_host));
    // SLA: path propagation (geography, not negotiable) plus 2 ms for
    // queueing/serialization.
    const auto path = routes.flow_path(src, dst, flow.flow_id);
    double propagation = 0;
    for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
      const std::size_t port = routes.egress_port(path[hop], dst, flow.flow_id);
      propagation += topo.link_at(topo.peer_of(path[hop], port).link_index)
                         .propagation_delay;
    }
    const double sla_ms = propagation * 1e3 + 2.0;
    const double p99_ms = stats::percentile(it->second, 0.99) * 1e3;
    table.add_row({std::to_string(flow.flow_id),
                   topo.at(src).name + "->" + topo.at(dst).name,
                   util::fmt(p99_ms, 3), util::fmt(sla_ms, 3),
                   p99_ms <= sla_ms ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Packet-level visibility: export the busiest PoP's egress trace for
  // offline audit (same CSV format TGUtil ingests).
  topo::node_id busiest = topo.devices().front();
  std::size_t busiest_packets = 0;
  for (const auto dev : topo.devices()) {
    std::size_t total = 0;
    for (std::size_t port = 0; port < topo.port_count(dev); ++port)
      total += net.egress_stream(dev, port).size();
    if (total > busiest_packets) {
      busiest_packets = total;
      busiest = dev;
    }
  }
  std::vector<traffic::packet_stream> streams;
  for (std::size_t port = 0; port < topo.port_count(busiest); ++port)
    streams.push_back(net.egress_stream(busiest, port));
  const auto merged = traffic::merge_streams(std::move(streams));
  const std::string path = "abilene_busiest_pop_trace.csv";
  traffic::write_trace_csv_file(path, merged);
  std::printf("busiest PoP: %s (%zu packets) — egress trace exported to %s\n",
              topo.at(busiest).name.c_str(), busiest_packets, path.c_str());
  return 0;
}
