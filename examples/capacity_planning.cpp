// Capacity planning (the paper's §1 motivating task): given a FatTree16
// datacenter fabric, how much per-host offered load can we carry before the
// p99 end-to-end latency violates an SLO — and when it does, which devices
// are the bottleneck?
//
// DeepQueueNet answers both questions from one trained device model: the
// load sweep is a sequence of fast inference runs, and the bottleneck is
// read directly off the per-device hop traces (packet-level visibility).
#include "examples/example_util.hpp"

#include <algorithm>
#include <map>

using namespace dqn;

int main() {
  std::printf("=== Capacity planning on FatTree16 ===\n\n");
  constexpr double slo_p99_us = 95.0;  // the latency budget
  auto ptm = examples::example_device_model();

  const auto topo = topo::make_fattree16(examples::links());
  const topo::routing routes{topo};
  const double horizon = 0.04;

  util::text_table table{{"max link load", "per-flow rate (pps)",
                          "mean RTT (us)", "p99 RTT (us)", "meets 95us SLO"}};
  double knee_load = 0;
  std::vector<des::hop_record> hops_at_knee;
  for (const double load : {0.2, 0.35, 0.5, 0.65, 0.75, 0.85}) {
    const auto setup = examples::make_traffic_load(
        topo, routes, traffic::traffic_model::poisson, load, horizon, 11);
    core::engine_config cfg;
    cfg.partitions = 4;
    cfg.record_hops = true;
    core::dqn_network net{topo, routes, ptm, core::scheduler_context{}, cfg};
    const auto run = net.run(setup.streams, horizon);
    const auto latencies = des::all_latencies(run);
    const double mean_us = stats::mean(latencies) * 1e6;
    const double p99_us = stats::percentile(latencies, 0.99) * 1e6;
    const bool ok = p99_us <= slo_p99_us;
    table.add_row({util::fmt(load, 2), util::fmt(setup.per_flow_rate, 0),
                   util::fmt(mean_us, 1), util::fmt(p99_us, 1),
                   ok ? "yes" : "NO"});
    if (!ok && knee_load == 0) {
      knee_load = load;
      hops_at_knee = run.hops;
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  if (knee_load > 0) {
    // Packet-level visibility: rank devices by mean predicted sojourn at the
    // first violating load — this is where capacity should be added.
    std::map<topo::node_id, std::pair<double, std::size_t>> by_device;
    for (const auto& hop : hops_at_knee) {
      auto& [total, count] = by_device[hop.device];
      total += hop.departure - hop.arrival;
      ++count;
    }
    std::vector<std::pair<double, topo::node_id>> ranked;
    for (const auto& [device, acc] : by_device)
      ranked.emplace_back(acc.first / static_cast<double>(acc.second), device);
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("bottleneck devices at %.2f max link load (mean predicted sojourn):\n",
                knee_load);
    for (std::size_t i = 0; i < std::min<std::size_t>(4, ranked.size()); ++i)
      std::printf("  %-8s %.1f us\n",
                  topo.at(ranked[i].second).name.c_str(), ranked[i].first * 1e6);
    std::printf("\nreading: aggregation/core switches saturate first — add "
                "uplink capacity there before upgrading ToRs.\n");
  } else {
    std::printf("SLO met at every tested load; raise the sweep range.\n");
  }
  return 0;
}
