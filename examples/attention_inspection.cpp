// Attention inspection: the paper credits the PTM's accuracy to multi-head
// attention "capturing relationships and correlations between packets"
// (§4.2). This example trains the BLSTM+attention PTM variant on a small
// corpus and prints, for one bursty window, which earlier packets each
// attention head weights when predicting the final packet's sojourn.
#include "examples/example_util.hpp"

#include <algorithm>
#include <memory>

#include "core/delay_provider.hpp"
#include "core/features.hpp"
#include "nn/attention.hpp"

using namespace dqn;

int main() {
  std::printf("=== PTM attention inspection (BLSTM + multi-head attention) ===\n\n");

  // A small attention-architecture PTM, trained fresh (not cached: the
  // point of this example is the training + introspection path).
  core::dutil_config cfg;
  cfg.ports = 4;
  cfg.streams = 24;
  cfg.packets_per_stream = 800;
  cfg.ptm.arch = core::ptm_arch::attention;
  cfg.ptm.time_steps = 10;
  cfg.ptm.lstm_hidden = {12, 8};
  cfg.ptm.heads = 3;
  cfg.ptm.key_dim = 8;
  cfg.ptm.value_dim = 8;
  cfg.ptm.attention_out = 16;
  cfg.ptm.epochs = 6;
  cfg.seed = 515;
  std::printf("[setup] training a small attention PTM (~1-2 minutes)...\n");
  const auto bundle = core::train_device_model(cfg);
  std::printf("[setup] done; final MSE %.5f\n\n", bundle.report.epoch_mse.back());

  // One bursty window: 6 idle-spaced packets, then a 4-packet burst.
  traffic::packet_stream window;
  double t = 0;
  for (int i = 0; i < 10; ++i) {
    traffic::packet p;
    p.pid = static_cast<std::uint64_t>(i);
    p.size_bytes = 1000;
    t += i < 6 ? 1e-3 : 2e-6;  // burst at the end
    window.push_back({p, t});
  }
  core::scheduler_context ctx;
  ctx.bandwidth_bps = examples::link_bps;
  const auto rows = core::compute_features(window, ctx);
  const auto windows = core::make_windows(rows, cfg.ptm.time_steps);
  // Take the last window (predicting packet 10's sojourn).
  const std::size_t window_values = cfg.ptm.time_steps * core::feature_count;
  std::vector<double> last(windows.end() - window_values, windows.end());
  // Inference through the delay-provider layer (ptm_model::predict stays
  // private to src/core); the no-op deleter aliases the in-place model.
  const core::ptm_delay_provider provider{std::shared_ptr<const core::ptm_model>{
      &bundle.model, [](const core::ptm_model*) {}}};
  const auto sojourn = provider.predict_windows(last);
  std::printf("predicted sojourn of the window's final packet: %.2f us\n\n",
              sojourn.back() * 1e6);

  auto model = bundle.model;  // attention_maps needs a mutable model
  const auto maps = model.attention_maps(last);
  std::printf("attention of the final position over the window (%zu heads):\n",
              maps.size());
  std::printf("%-10s", "position");
  for (std::size_t pos = 0; pos < cfg.ptm.time_steps; ++pos)
    std::printf("%8zu", pos);
  std::printf("\n");
  for (std::size_t head = 0; head < maps.size(); ++head) {
    const auto& weights = maps[head];
    std::printf("head %-5zu", head);
    for (std::size_t pos = 0; pos < cfg.ptm.time_steps; ++pos)
      std::printf("%8.3f", weights(weights.rows() - 1, pos));
    std::printf("\n");
  }
  std::printf(
      "\nreading: positions 6-9 are the burst contending for the same queue\n"
      "as the predicted packet; that is where informative heads concentrate.\n"
      "At this small CPU-trained scale the distributions stay fairly flat —\n"
      "most of the queueing signal rides on the engineered work-bound\n"
      "features — but the sojourn prediction above is on target (the burst\n"
      "puts ~3 services of backlog ahead of the final packet). At the paper's\n"
      "model/data scale the heads specialise (§4.2).\n");
  return 0;
}
