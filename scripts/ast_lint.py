#!/usr/bin/env python3
"""AST lint: hot-path, ordering, and atomic memory-order invariants.

Four rules (docs/STATIC_ANALYSIS.md is the rationale; tests/lint_fixtures/
the executable spec — every bad fixture must be rejected, every good twin
pass):

  hot-path-alloc       Functions marked DQN_HOT_PATH (util/annotations.hpp)
                       are steady-state per-packet kernels: no allocating
                       constructs inside the body — operator new,
                       make_unique/make_shared, std::string construction,
                       std::to_string, stringstreams, container declarations,
                       or container growth calls (push_back/emplace/insert/
                       resize/reserve/append). Stage buffers outside, pass
                       them in pre-sized (see core/device_model.cpp).

  hot-path-string-obs  Inside DQN_HOT_PATH bodies, obs recording goes through
                       pre-resolved handles only: no string-keyed sink calls
                       (count("...")/gauge("...")/observe("...")/event("...")
                       — each hashes the name under the registry meta mutex)
                       and no handle resolution (counter_handle_for and
                       friends: resolution locks; do it once at setup).

  atomic-order         Every std::atomic load/store/RMW in first-party code
                       names an explicit std::memory_order. Defaulted
                       seq_cst hides the intended contract; where seq_cst is
                       required, say so: .load(std::memory_order_seq_cst)
                       plus a one-line comment.

  unordered-iteration  Range-for traversal of a std::unordered_map/set whose
                       body accumulates values (+=/-=/*=//=), emits output
                       (stream <<, push_back/emplace/insert/append into an
                       outside container), or takes the element by non-const
                       reference (mutation through the loop variable).
                       Traversal order is implementation- and
                       rehash-dependent, so any of those turns into
                       cross-run / cross-partition nondeterminism. Fix by
                       iterating in sorted key order (or restructuring to a
                       keyed vector — util/keyed_vector.hpp); genuinely
                       order-insensitive loops are silenced with an explicit
                       `// dqn-order-insensitive: <rationale>` annotation on
                       the loop line or the line above.

Engines:

  builtin  Dependency-free single-pass lexer (comment/string masking + token
           scan). The portable floor — runs anywhere python3 runs, including
           containers with no clang at all. Hot functions are found by the
           DQN_HOT_PATH macro name; rule application is textual over the
           brace-matched body.

  clang    libclang (python3-clang) over the real AST: hot functions are
           found semantically via the annotate("dqn::hot_path") attribute the
           macro expands to under clang, so aliasing or re-#defining the
           macro cannot hide a function from the lint. Body rules then run
           over the clang-reported body extent. Requires the libclang python
           bindings; the CI static-analysis job pins and installs them.

  auto     clang when the bindings import and the library loads, else
           builtin (the default).

Note the engine split for this tree: scripts/ast_lint.py is the portable
floor; the clang-tidy plugin in tools/tidy/ (checks dqn-hot-path-alloc,
dqn-unordered-iteration, dqn-atomic-order, dqn-narrowing-float) is the
compiler-grade promotion that sees through templates, typedefs, and macros.
Both read the same `dqn-order-insensitive` annotations.

Exit status: 0 clean, 1 findings, 2 usage/engine error. Findings print as
`file:line: [rule] message`, one per line, machine-greppable; with
--format=json a stable, sorted JSON document is emitted instead (CI uploads
it as the ast-lint artifact so artifact diffs are meaningful).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HOT_MACRO = "DQN_HOT_PATH"
HOT_ANNOTATION = "dqn::hot_path"
ORDER_ANNOTATION = "dqn-order-insensitive"

# Rule registry: name -> one-line description (--list-rules; the module
# docstring carries the full rationale per rule).
RULES = {
    "hot-path-alloc": (
        "no allocating constructs inside DQN_HOT_PATH bodies "
        "(new/make_unique/make_shared, string construction, container "
        "declaration or growth)"
    ),
    "hot-path-string-obs": (
        "no string-keyed obs calls or handle resolution inside DQN_HOT_PATH "
        "bodies (pre-resolve handles at setup)"
    ),
    "atomic-order": (
        "every std::atomic access names an explicit std::memory_order "
        "(defaulted seq_cst hides the intended contract)"
    ),
    "unordered-iteration": (
        "no accumulating/output-emitting/mutating range-for over "
        "std::unordered_{map,set} without a "
        "'// dqn-order-insensitive: <rationale>' annotation"
    ),
}

# ---------------------------------------------------------------------------
# Shared body rules (both engines funnel hot-function bodies through these).
# ---------------------------------------------------------------------------

ALLOC_PATTERNS = [
    (re.compile(r"(?<![\w:])new\s+[A-Za-z_(:]"), "operator new"),
    (re.compile(r"\bmake_unique\s*<"), "std::make_unique"),
    (re.compile(r"\bmake_shared\s*<"), "std::make_shared"),
    (re.compile(r"\bstd::to_string\s*\("), "std::to_string"),
    (re.compile(r"\bstd::o?stringstream\b"), "stringstream"),
    (re.compile(r"\bstd::string\s*[\s\w]*[{(;=]"), "std::string construction"),
    (
        re.compile(
            r"\bstd::(vector|deque|list|forward_list|map|multimap|set|multiset|"
            r"unordered_map|unordered_set|unordered_multimap|unordered_multiset|"
            r"queue|priority_queue|stack|function)\s*<"
        ),
        "container declaration",
    ),
    (
        re.compile(
            r"\.\s*(push_back|emplace_back|push_front|emplace_front|emplace|"
            r"insert|insert_or_assign|try_emplace|resize|reserve|append)\s*\("
        ),
        "container growth",
    ),
]

STRING_OBS_PATTERNS = [
    (
        re.compile(r"[.>]\s*(count|gauge|observe|event)\s*\(\s*\""),
        "string-keyed obs call (pre-resolve a handle at setup)",
    ),
    (
        re.compile(r"\b(counter|gauge|histogram)_handle_for\s*\("),
        "handle resolution (resolve once at setup, not per packet)",
    ),
]

ATOMIC_ONLY_METHODS = re.compile(
    r"[.>]\s*(fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|exchange|"
    r"compare_exchange_weak|compare_exchange_strong|test_and_set)\s*\("
)

# `name.load(...)` / `name.store(...)` (optionally subscripted receiver);
# only applied when `name` is a declared std::atomic in this file or its
# paired header — .load() is too common (streams, nn models) to flag blindly.
LOAD_STORE_CALL = re.compile(
    r"(?<![\w.>])([A-Za-z_]\w*)\s*(?:\[[^][]*\])?\s*\.\s*(load|store)\s*\("
)

ATOMIC_DECL = re.compile(r"std::atomic\s*<[^;{()]*>\s*&?\s*([A-Za-z_]\w*)")

# `std::unordered_map<K, V> name` — the template argument list may nest
# (pair<...>), so the char class only excludes tokens that end a declarator.
# An optional trailing DQN_* annotation macro (e.g. DQN_GUARDED_BY(m_)) may
# sit between the name and the declarator terminator.
UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|multimap|set|multiset)\s*<[^;{}()]*>\s*&?\s*"
    r"([A-Za-z_]\w*)\s*(?:DQN_\w+\s*\([^()]*\)\s*)?[;={(\[),]"
)

# Range-for whose range expression ends in a plain identifier (possibly a
# member path — the last component is what the declaration scan names).
RANGE_FOR = re.compile(
    r"\bfor\s*\(\s*(?P<decl>[^():;]*?)\s*:\s*"
    r"(?P<recv>[\w.\->]*?([A-Za-z_]\w*))\s*\)"
)

# Body constructs that make iteration order observable: accumulation into a
# value, stream output, and appends into a container declared outside the
# loop. Mutation through a non-const-reference loop variable is detected on
# the loop declaration itself.
ORDER_SENSITIVE_BODY = [
    (re.compile(r"[+\-*/]="), "accumulates with a compound assignment"),
    (re.compile(r"<<"), "emits stream output"),
    (
        re.compile(r"\.\s*(push_back|emplace_back|emplace|insert|append)\s*\("),
        "appends to a container",
    ),
]

NONCONST_REF_LOOP_VAR = re.compile(r"(?<!const )\bauto\s*&")

ORDER_ANNOTATION_WITH_RATIONALE = re.compile(
    re.escape(ORDER_ANNOTATION) + r"\s*:\s*\S"
)


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self) -> str:
        rel = os.path.relpath(self.path, REPO)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "file": os.path.relpath(self.path, REPO),
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def mask_source(text: str) -> str:
    """Blank comments entirely and string/char *contents* (quotes survive so
    string-keyed call sites stay detectable); newlines survive so offsets and
    line numbers are unchanged. Handles //, /**/, "...", '...' and raw
    string literals R"delim(...)delim"."""
    out = list(text)
    i, n = 0, len(text)

    def blank(a: int, b: int) -> None:
        for j in range(a, b):
            if out[j] != "\n":
                out[j] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            blank(i, end)
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            blank(i, end)
            i = end
        elif c == '"' and text[max(0, i - 1) : i + 1] in ('"', 'R"') and text[
            max(0, i - 1)
        ] == "R":
            # raw string literal: R"delim( ... )delim"
            open_paren = text.find("(", i)
            if open_paren == -1:
                i += 1
                continue
            delim = text[i + 1 : open_paren]
            close = text.find(")" + delim + '"', open_paren)
            close = n if close == -1 else close + len(delim) + 2
            blank(i + 1, close - 1)
            i = close
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            blank(i + 1, min(j, n))
            i = min(j, n) + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            blank(i + 1, min(j, n))
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def check_hot_body(path: str, masked: str, start: int, end: int) -> list:
    """Apply the hot-path body rules to masked[start:end]."""
    findings = []
    body = masked[start:end]
    for pattern, what in ALLOC_PATTERNS:
        for m in pattern.finditer(body):
            findings.append(
                Finding(
                    path,
                    line_of(masked, start + m.start()),
                    "hot-path-alloc",
                    f"{what} inside a {HOT_MACRO} body",
                )
            )
    for pattern, what in STRING_OBS_PATTERNS:
        for m in pattern.finditer(body):
            findings.append(
                Finding(
                    path,
                    line_of(masked, start + m.start()),
                    "hot-path-string-obs",
                    f"{what} inside a {HOT_MACRO} body",
                )
            )
    return findings


def balanced_args(masked: str, open_paren: int) -> str:
    """Text between open_paren and its matching close (exclusive)."""
    depth = 0
    for j in range(open_paren, len(masked)):
        if masked[j] == "(":
            depth += 1
        elif masked[j] == ")":
            depth -= 1
            if depth == 0:
                return masked[open_paren + 1 : j]
    return masked[open_paren + 1 :]


def check_atomic_orders(path: str, masked: str, atomic_names: set) -> list:
    findings = []
    for m in ATOMIC_ONLY_METHODS.finditer(masked):
        args = balanced_args(masked, masked.index("(", m.end() - 1))
        if "memory_order" not in args:
            findings.append(
                Finding(
                    path,
                    line_of(masked, m.start()),
                    "atomic-order",
                    f".{m.group(1)}() without an explicit std::memory_order",
                )
            )
    for m in LOAD_STORE_CALL.finditer(masked):
        if m.group(1) not in atomic_names:
            continue
        args = balanced_args(masked, masked.index("(", m.end() - 1))
        if "memory_order" not in args:
            findings.append(
                Finding(
                    path,
                    line_of(masked, m.start()),
                    "atomic-order",
                    f"{m.group(1)}.{m.group(2)}() without an explicit "
                    "std::memory_order",
                )
            )
    return findings


def unordered_names_for(path: str, masked: str) -> set:
    """Declared std::unordered_{map,set} variable names in this file plus,
    for a .cpp, its paired header (members live in the .hpp)."""
    names = {m.group(1) for m in UNORDERED_DECL.finditer(masked)}
    root, ext = os.path.splitext(path)
    if ext == ".cpp":
        header = root + ".hpp"
        if os.path.exists(header):
            with open(header, encoding="utf-8") as fh:
                names |= {
                    m.group(1)
                    for m in UNORDERED_DECL.finditer(mask_source(fh.read()))
                }
    return names


def loop_body_span(masked: str, after: int) -> tuple:
    """(start, end) offsets of the loop body following the for's close paren
    at `after`: a brace-matched compound statement, or the single statement
    up to its `;`."""
    i, n = after, len(masked)
    while i < n and masked[i].isspace():
        i += 1
    if i < n and masked[i] == "{":
        brace, j = 1, i + 1
        while j < n and brace:
            if masked[j] == "{":
                brace += 1
            elif masked[j] == "}":
                brace -= 1
            j += 1
        return i + 1, j - 1
    end = masked.find(";", i)
    return i, n if end == -1 else end + 1


def annotated_order_insensitive(text: str, line: int) -> tuple:
    """(annotated, has_rationale) looking at the loop's own line plus its
    contiguous leading `//` comment block in the ORIGINAL text (annotations
    are comments, which masking blanks)."""
    lines = text.split("\n")
    window = [lines[line - 1]]  # the loop line itself (trailing comment)
    i = line - 2
    while i >= 0 and lines[i].lstrip().startswith("//"):
        window.append(lines[i])
        i -= 1
    joined = "\n".join(window)
    if ORDER_ANNOTATION not in joined:
        return False, False
    return True, ORDER_ANNOTATION_WITH_RATIONALE.search(joined) is not None


def check_unordered_iterations(
    path: str, text: str, masked: str, unordered_names: set
) -> list:
    findings = []
    for m in RANGE_FOR.finditer(masked):
        if m.group(3) not in unordered_names:
            continue
        line = line_of(masked, m.start())
        annotated, has_rationale = annotated_order_insensitive(text, line)
        if annotated and has_rationale:
            continue
        if annotated:
            findings.append(
                Finding(
                    path,
                    line,
                    "unordered-iteration",
                    f"{ORDER_ANNOTATION} annotation present but missing its "
                    f"rationale (write '// {ORDER_ANNOTATION}: <why order "
                    "cannot matter>')",
                )
            )
            continue
        reasons = []
        if NONCONST_REF_LOOP_VAR.search(m.group("decl")):
            reasons.append("binds elements by non-const reference")
        start, end = loop_body_span(masked, m.end())
        body = masked[start:end]
        reasons.extend(what for pat, what in ORDER_SENSITIVE_BODY if pat.search(body))
        if not reasons:
            continue
        findings.append(
            Finding(
                path,
                line,
                "unordered-iteration",
                f"range-for over unordered container '{m.group(3)}' "
                f"{'; '.join(reasons)} — iteration order is nondeterministic; "
                "iterate in sorted key order, restructure to a keyed vector, "
                f"or annotate '// {ORDER_ANNOTATION}: <rationale>'",
            )
        )
    return findings


def atomic_names_for(path: str, masked: str) -> set:
    """Declared std::atomic variable names in this file plus, for a .cpp, its
    paired header (members are declared in the .hpp, used in the .cpp)."""
    names = {m.group(1) for m in ATOMIC_DECL.finditer(masked)}
    root, ext = os.path.splitext(path)
    if ext == ".cpp":
        header = root + ".hpp"
        if os.path.exists(header):
            with open(header, encoding="utf-8") as fh:
                names |= {
                    m.group(1) for m in ATOMIC_DECL.finditer(mask_source(fh.read()))
                }
    return names


# ---------------------------------------------------------------------------
# builtin engine: find DQN_HOT_PATH bodies by macro token + brace matching.
# ---------------------------------------------------------------------------

HOT_TOKEN = re.compile(r"\b" + HOT_MACRO + r"\b")


def builtin_hot_bodies(masked: str):
    """Yield (body_start, body_end) offsets for every DQN_HOT_PATH function
    *definition* (declarations — `;` before `{` at depth 0 — are skipped, as
    are preprocessor lines such as the macro's own #define)."""
    for m in HOT_TOKEN.finditer(masked):
        line_start = masked.rfind("\n", 0, m.start()) + 1
        if masked[line_start:m.start()].lstrip().startswith("#"):
            continue  # the #define itself (or conditional around it)
        depth = 0
        i = m.end()
        n = len(masked)
        while i < n:
            c = masked[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif depth == 0 and c == ";":
                break  # declaration only
            elif depth == 0 and c == "{":
                brace = 1
                j = i + 1
                while j < n and brace:
                    if masked[j] == "{":
                        brace += 1
                    elif masked[j] == "}":
                        brace -= 1
                    j += 1
                yield i + 1, j - 1
                break
            i += 1


def run_builtin(paths):
    findings = []
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        masked = mask_source(text)
        for start, end in builtin_hot_bodies(masked):
            findings.extend(check_hot_body(path, masked, start, end))
        findings.extend(
            check_atomic_orders(path, masked, atomic_names_for(path, masked))
        )
        findings.extend(
            check_unordered_iterations(
                path, text, masked, unordered_names_for(path, masked)
            )
        )
    return findings


# ---------------------------------------------------------------------------
# clang engine: find hot functions via the annotate attribute in the AST.
# ---------------------------------------------------------------------------


_clang_configured = False


def _configure_libclang(cindex) -> None:
    """Point the bindings at a libclang shared object. Order: explicit
    CLANG_LIBRARY_FILE env override, the bindings' own default search, then
    distro-versioned locations (/usr/lib/llvm-N/lib/libclang-N.so...)."""
    global _clang_configured
    if _clang_configured:
        return
    _clang_configured = True
    env = os.environ.get("CLANG_LIBRARY_FILE")
    if env:
        cindex.Config.set_library_file(env)
        return
    try:
        cindex.Index.create()
        return  # default search works; leave the config untouched
    except Exception:
        pass
    import glob

    candidates = sorted(
        glob.glob("/usr/lib/llvm-*/lib/libclang-*.so*")
        + glob.glob("/usr/lib/llvm-*/lib/libclang.so*")
        + glob.glob("/usr/lib/*/libclang-*.so*"),
        reverse=True,  # prefer the newest-versioned install
    )
    if candidates:
        cindex.Config.set_library_file(candidates[0])


def clang_available() -> bool:
    try:
        from clang import cindex

        _configure_libclang(cindex)
        cindex.Index.create()
        return True
    except Exception:
        return False


def clang_args_for(path: str, build_dir: str):
    from clang import cindex

    db_path = os.path.join(build_dir, "compile_commands.json")
    if os.path.exists(db_path):
        try:
            db = cindex.CompilationDatabase.fromDirectory(build_dir)
            cmds = db.getCompileCommands(os.path.abspath(path))
            if cmds:
                args = list(cmds[0].arguments)[1:]  # drop the compiler itself
                # drop the source file and -o/-c plumbing; keep flags/includes
                cleaned, skip = [], False
                for a in args:
                    if skip:
                        skip = False
                        continue
                    if a in ("-o", "-c"):
                        skip = a == "-o"
                        continue
                    if a == os.path.abspath(path) or a.endswith(
                        os.path.basename(path)
                    ):
                        continue
                    cleaned.append(a)
                return cleaned
        except Exception:
            pass
    return ["-xc++", "-std=c++20", "-I" + os.path.join(REPO, "src")]


def run_clang(paths, build_dir):
    from clang import cindex

    index = cindex.Index.create()
    findings = []
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        masked = mask_source(text)
        atomic_names = atomic_names_for(path, masked)
        tu = index.parse(
            path,
            args=clang_args_for(path, build_dir),
            options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD,
        )
        fatal = [
            d
            for d in tu.diagnostics
            if d.severity >= cindex.Diagnostic.Fatal
        ]
        if fatal:
            print(
                f"ast_lint: clang failed to parse {path}: {fatal[0].spelling}",
                file=sys.stderr,
            )
            return None
        abspath = os.path.abspath(path)

        def walk(cursor):
            for child in cursor.get_children():
                loc = child.location
                if loc.file is not None and os.path.abspath(loc.file.name) != abspath:
                    continue
                if child.kind in (
                    cindex.CursorKind.FUNCTION_DECL,
                    cindex.CursorKind.CXX_METHOD,
                    cindex.CursorKind.CONSTRUCTOR,
                    cindex.CursorKind.FUNCTION_TEMPLATE,
                ) and child.is_definition():
                    annotated = any(
                        a.kind == cindex.CursorKind.ANNOTATE_ATTR
                        and a.spelling == HOT_ANNOTATION
                        for a in child.get_children()
                    )
                    if annotated:
                        body = next(
                            (
                                c
                                for c in child.get_children()
                                if c.kind == cindex.CursorKind.COMPOUND_STMT
                            ),
                            None,
                        )
                        if body is not None:
                            findings.extend(
                                check_hot_body(
                                    path,
                                    masked,
                                    body.extent.start.offset,
                                    body.extent.end.offset,
                                )
                            )
                walk(child)

        walk(tu.cursor)
        findings.extend(check_atomic_orders(path, masked, atomic_names))
        # The ordering rule is shared with the builtin engine textually; the
        # fully semantic promotion (sees through typedefs and member paths)
        # is the tools/tidy dqn-unordered-iteration clang-tidy check.
        findings.extend(
            check_unordered_iterations(
                path, text, masked, unordered_names_for(path, masked)
            )
        )
    return findings


# ---------------------------------------------------------------------------


def default_paths():
    paths = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(REPO, "src")):
        for name in sorted(filenames):
            if name.endswith((".cpp", ".hpp")):
                paths.append(os.path.join(dirpath, name))
    return sorted(paths)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="hot-path and atomic memory-order lint (see module docstring)"
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="files to lint (default: every .cpp/.hpp under src/)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "clang", "builtin"),
        default="auto",
        help="auto = clang bindings if importable, else builtin (default)",
    )
    parser.add_argument(
        "--build-dir",
        default=os.path.join(REPO, "build"),
        help="directory holding compile_commands.json for the clang engine",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings format: text (file:line: [rule] message) or json "
        "(stable sorted document for CI artifact diffs)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule names this lint enforces and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        if args.format == "json":
            print(json.dumps({"rules": RULES}, indent=2, sort_keys=True))
        else:
            for name in sorted(RULES):
                print(f"{name}: {RULES[name]}")
        return 0

    paths = [os.path.abspath(f) for f in args.files] or default_paths()
    for path in paths:
        if not os.path.exists(path):
            print(f"ast_lint: no such file: {path}", file=sys.stderr)
            return 2

    engine = args.engine
    if engine == "auto":
        if clang_available():
            engine = "clang"
        else:
            # Degrading from the semantic engine to the textual floor is a
            # real loss of coverage — say so (exactly once), instead of
            # silently reporting success at a weaker tier.
            print(
                "ast_lint: engine 'auto': libclang python bindings "
                "unavailable; falling back to the builtin lexer engine",
                file=sys.stderr,
            )
            engine = "builtin"
    elif engine == "clang" and not clang_available():
        print(
            "ast_lint: --engine clang requested but the libclang python "
            "bindings are unavailable (pip/apt: python3-clang + libclang)",
            file=sys.stderr,
        )
        return 2

    if engine == "clang":
        findings = run_clang(paths, args.build_dir)
        if findings is None:
            return 2
    else:
        findings = run_builtin(paths)

    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
    if args.format == "json":
        # Stable by construction: relative paths, deterministic sort, sorted
        # keys, no timestamps — two runs over the same tree diff empty.
        print(
            json.dumps(
                {
                    "engine": engine,
                    "checked_files": len(paths),
                    "findings": [f.as_dict() for f in ordered],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for f in ordered:
            print(f.render())
    if findings:
        print(
            f"ast_lint: {len(findings)} finding(s) [{engine} engine]",
            file=sys.stderr,
        )
        return 1
    print(f"ast_lint: OK [{engine} engine, {len(paths)} file(s)]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
