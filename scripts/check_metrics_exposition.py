#!/usr/bin/env python3
"""Validate a Prometheus text exposition scraped from the /metrics endpoint.

Usage:
  check_metrics_exposition.py SCRAPE [--require-family PREFIX]...
  check_metrics_exposition.py SCRAPE1 SCRAPE2 [--require-family PREFIX]...

With one file: checks the document is well-formed exposition text (every
line is a `# TYPE` comment or a `name[{labels}] value` sample, names match
the Prometheus grammar, values parse, each family has exactly one TYPE line,
histogram `_bucket` series are cumulative-monotone with `+Inf` == `_count`),
and that at least one family starts with every --require-family prefix.

With two files (scrapes of the SAME process, second taken later): also
checks every counter present in both is monotone non-decreasing.

Exit 0 = all checks pass; 1 = a check failed (details on stderr). This is
the CI gate behind the telemetry endpoint smoke (.github/workflows/ci.yml);
tests/test_telemetry.cpp holds the in-process twin of the format checks.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")

errors = []


def fail(message):
    errors.append(message)


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)  # raises ValueError on garbage


def parse_exposition(path):
    """Return (types, samples): family -> type, and (name, labels) -> value."""
    types = {}
    samples = {}
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle.read().split("\n"), start=1):
            if raw == "" :
                continue  # trailing newline; interior blanks are tolerated
            where = f"{path}:{lineno}"
            match = TYPE_RE.match(raw)
            if match:
                family, kind = match.groups()
                if family in types:
                    fail(f"{where}: duplicate TYPE line for family {family}")
                types[family] = kind
                continue
            if raw.startswith("#"):
                continue  # HELP or free comment: legal, uninteresting
            match = SAMPLE_RE.match(raw)
            if not match:
                fail(f"{where}: unparseable sample line: {raw!r}")
                continue
            name, labels, value_text = match.groups()
            try:
                value = parse_value(value_text)
            except ValueError:
                fail(f"{where}: bad sample value {value_text!r}")
                continue
            key = (name, labels or "")
            if key in samples:
                fail(f"{where}: duplicate sample {name}{labels or ''}")
            samples[key] = value
    return types, samples


def family_of(name, types):
    """Histogram child series (_bucket/_sum/_count) belong to their parent."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def check_document(path):
    types, samples = parse_exposition(path)
    for (name, labels), _ in samples.items():
        family = family_of(name, types)
        if family not in types:
            fail(f"{path}: sample {name}{labels} has no TYPE line")
    # Histogram invariants: buckets monotone in le order, +Inf == _count.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = []
        for (name, labels), value in samples.items():
            if name != family + "_bucket":
                continue
            le_match = re.search(r'le="([^"]*)"', labels)
            if not le_match:
                fail(f"{path}: {name}{labels} lacks an le label")
                continue
            buckets.append((parse_value(le_match.group(1)), value))
        if not buckets:
            fail(f"{path}: histogram {family} has no _bucket series")
            continue
        buckets.sort(key=lambda pair: pair[0])
        counts = [count for _, count in buckets]
        if counts != sorted(counts):
            fail(f"{path}: histogram {family} buckets are not cumulative")
        if buckets[-1][0] != float("inf"):
            fail(f"{path}: histogram {family} is missing the +Inf bucket")
        total = samples.get((family + "_count", ""))
        if total is None:
            fail(f"{path}: histogram {family} is missing _count")
        elif buckets[-1][1] != total:
            fail(
                f"{path}: histogram {family} +Inf bucket {buckets[-1][1]} "
                f"!= _count {total}"
            )
    return types, samples


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scrapes", nargs="+", help="one or two scrape files")
    parser.add_argument(
        "--require-family",
        action="append",
        default=[],
        metavar="PREFIX",
        help="require at least one family starting with PREFIX",
    )
    args = parser.parse_args()
    if len(args.scrapes) > 2:
        parser.error("expected one or two scrape files")

    first_types, first_samples = check_document(args.scrapes[0])
    for prefix in args.require_family:
        if not any(f.startswith(prefix) for f in first_types):
            fail(f"{args.scrapes[0]}: no metric family starts with {prefix!r}")

    if len(args.scrapes) == 2:
        second_types, second_samples = check_document(args.scrapes[1])
        for family, kind in first_types.items():
            if kind == "counter" and second_types.get(family) != "counter":
                fail(f"{args.scrapes[1]}: counter family {family} disappeared")
        for (name, labels), before in first_samples.items():
            if first_types.get(name) != "counter":
                continue
            after = second_samples.get((name, labels))
            if after is None:
                fail(f"{args.scrapes[1]}: counter sample {name} disappeared")
            elif after < before:
                fail(
                    f"counter {name} went backwards between scrapes: "
                    f"{before} -> {after}"
                )

    if errors:
        for message in errors:
            print(f"[exposition] FAIL: {message}", file=sys.stderr)
        return 1
    families = len(first_types)
    print(f"[exposition] OK: {args.scrapes[0]} ({families} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
