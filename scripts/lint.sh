#!/usr/bin/env bash
# Repo lint driver: custom greppable rules, header self-containment,
# clang-tidy, and (optionally) a clang-format gate.
#
# Usage:
#   scripts/lint.sh                 # custom rules + self-containment + tidy
#   scripts/lint.sh --no-tidy       # skip clang-tidy (e.g. no compile DB yet)
#   scripts/lint.sh --tidy-base R   # tidy only src/ files changed since R
#                                   # (PR mode; default is the full tree)
#   scripts/lint.sh --format        # additionally format-check changed files
#   scripts/lint.sh --format-base R # diff base for --format (default origin/main)
#   scripts/lint.sh --require-tools # missing tool = failure, not a skip (CI)
#
# clang-tidy needs the compilation database; configure first:
#   cmake -B build -S .   (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)
#
# Tool binaries are overridable for version pinning: CLANG_TIDY and
# CLANG_FORMAT name the executables (default clang-tidy / clang-format); the
# CI static-analysis job sets them to the pinned major version.
#
# By default tools that are not installed are skipped with a notice (exit
# stays 0): the custom rules below always run and are the portable floor.
# With --require-tools a missing tool is a lint failure — CI passes it so an
# image regression cannot silently disable a gate.
set -u

cd "$(dirname "$0")/.."

clang_tidy="${CLANG_TIDY:-clang-tidy}"
clang_format="${CLANG_FORMAT:-clang-format}"

run_tidy=1
tidy_base=""
run_format=0
format_base="origin/main"
require_tools=0
while [ $# -gt 0 ]; do
  case "$1" in
    --no-tidy) run_tidy=0 ;;
    --tidy-base) shift; tidy_base="$1" ;;
    --format) run_format=1 ;;
    --format-base) shift; format_base="$1" ;;
    --require-tools) require_tools=1 ;;
    *) echo "lint: unknown option $1" >&2; exit 2 ;;
  esac
  shift
done

failures=0
fail() {
  echo "LINT FAIL: $*" >&2
  failures=$((failures + 1))
}

# ---------------------------------------------------------------------------
# Rule 1: no std::endl in first-party code. endl flushes; in per-packet hot
# paths that is a syscall per line. Use '\n' and flush explicitly when needed.
# ---------------------------------------------------------------------------
if out=$(grep -rn "std::endl" src/ bench/ examples/ 2>/dev/null); then
  fail "std::endl found (use '\\n'; flush explicitly if required):"
  echo "$out" >&2
fi

# ---------------------------------------------------------------------------
# Rule 2: no naked new/delete in src/. Ownership goes through containers and
# smart pointers; placement new and vendored code would need an explicit
# NOLINT-style marker 'lint:allow-new' on the same line.
# ---------------------------------------------------------------------------
if out=$(grep -rnE '(^|[^_[:alnum:]])(new|delete)[[:space:]]+[A-Za-z_(]' src/ \
         | grep -vE '(//.*(new|delete))|lint:allow-new'); then
  fail "naked new/delete in src/ (use containers / smart pointers):"
  echo "$out" >&2
fi

# ---------------------------------------------------------------------------
# Rule 3: ptm_model::predict is private to src/core — everything else goes
# through the delay-provider API (core/delay_provider.hpp), so backend policy
# (ptm/analytical/tiered) stays swappable at one seam. The receiver pattern
# catches the PTM spellings used in this tree (model/ptm/bundle.model/...);
# baseline estimators with their own predict() (mn./rn.) are unrelated, and
# tests/ may reach the model directly to pin its numerics.
# ---------------------------------------------------------------------------
if out=$(grep -rnE '(ptm[A-Za-z_0-9]*|model)(\.|->)predict\(' \
         src/ bench/ examples/ 2>/dev/null | grep -v '^src/core/'); then
  fail "ptm_model::predict outside src/core (route through core/delay_provider.hpp):"
  echo "$out" >&2
fi

# ---------------------------------------------------------------------------
# Rule 4: every src/ header is referenced by at least one test. Modules whose
# coverage is intentionally transitive are allow-listed with a reason.
# ---------------------------------------------------------------------------
allow_untested=(
  # Exercised through core/engine.hpp's device_model wrapper in every engine test.
  "core/device_model.hpp"
  # Parameter-pack plumbing compiled into every nn test via lstm.hpp/attention.hpp.
  "nn/params.hpp"
  # Building block of the routenet and fluid baselines; exercised through
  # their suites in test_baselines.cpp.
  "baselines/constant_delay_replay.hpp"
)
while IFS= read -r header; do
  inc="${header#src/}"
  for allowed in "${allow_untested[@]}"; do
    [ "$inc" = "$allowed" ] && continue 2
  done
  if ! grep -rqF "\"$inc\"" tests/; then
    fail "no test references \"$inc\" (add a test or allow-list it here with a reason)"
  fi
done < <(find src -name "*.hpp" | sort)

# ---------------------------------------------------------------------------
# Rule 5: header self-containment — every header must compile on its own
# (catches headers that lean on includer-provided includes).
# ---------------------------------------------------------------------------
cxx="${CXX:-g++}"
if command -v "$cxx" >/dev/null 2>&1; then
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  while IFS= read -r header; do
    printf '#include "%s"\n' "${header#src/}" > "$tmp/self.cpp"
    if ! "$cxx" -std=c++20 -fsyntax-only -Isrc "$tmp/self.cpp" 2> "$tmp/self.err"; then
      fail "header not self-contained: $header"
      head -5 "$tmp/self.err" >&2
    fi
  done < <(find src -name "*.hpp" | sort)
elif [ "$require_tools" = 1 ]; then
  fail "$cxx not found but --require-tools was given"
else
  echo "lint: $cxx not found; skipping self-containment check" >&2
fi

# ---------------------------------------------------------------------------
# Rule 6: AST lint — hot-path purity (no allocation / string-keyed obs inside
# DQN_HOT_PATH bodies) and explicit std::memory_order on every atomic access.
# scripts/ast_lint.py carries a dependency-free builtin engine, so this rule
# always runs; with --require-tools the semantic libclang engine is demanded
# (CI installs python3-clang), so macro tricks cannot hide a hot function.
# ---------------------------------------------------------------------------
if command -v python3 >/dev/null 2>&1; then
  ast_engine="auto"
  [ "$require_tools" = 1 ] && ast_engine="clang"
  python3 scripts/ast_lint.py --engine "$ast_engine"
  case $? in
    0) ;;
    1) fail "ast_lint.py reported findings (see above)" ;;
    *) fail "ast_lint.py could not run (engine '$ast_engine' unavailable?)" ;;
  esac
elif [ "$require_tools" = 1 ]; then
  fail "python3 not found but --require-tools was given"
else
  echo "lint: python3 not found; skipping ast_lint (CI runs it)" >&2
fi

# ---------------------------------------------------------------------------
# clang-tidy over the compilation database (src/ only: tests and benches get
# tidied in CI where the runtime cost is parallelized).
# ---------------------------------------------------------------------------
if [ "$run_tidy" = 1 ]; then
  # DQNTidyModule (tools/tidy): loaded when built so the dqn-* checks run.
  # DQN_TIDY_PLUGIN overrides the path; *explicitly* requesting a missing
  # module is a hard failure (a stale CI cache must not silently drop the
  # dqn-* gate), whereas the default path simply not existing is the normal
  # plugin-less local build.
  tidy_load=()
  if [ -n "${DQN_TIDY_PLUGIN:-}" ]; then
    if [ ! -f "$DQN_TIDY_PLUGIN" ]; then
      fail "DQN_TIDY_PLUGIN=$DQN_TIDY_PLUGIN does not exist"
    else
      tidy_load=(--load="$DQN_TIDY_PLUGIN")
    fi
  elif [ -f build/tools/tidy/DQNTidyModule.so ]; then
    tidy_load=(--load=build/tools/tidy/DQNTidyModule.so)
  fi
  if ! command -v "$clang_tidy" >/dev/null 2>&1; then
    if [ "$require_tools" = 1 ]; then
      fail "$clang_tidy not found but --require-tools was given"
    else
      echo "lint: $clang_tidy not installed; skipping (CI runs it)" >&2
    fi
  elif [ ! -f build/compile_commands.json ]; then
    if [ "$require_tools" = 1 ]; then
      fail "build/compile_commands.json missing but --require-tools was given (configure first)"
    else
      echo "lint: build/compile_commands.json missing; configure first (skipping tidy)" >&2
    fi
  else
    # .clang-tidy sets WarningsAsErrors: '*', so any finding is a failure.
    if [ -n "$tidy_base" ]; then
      # PR mode: only the src/ translation units changed since the base ref.
      tidy_files=$(git diff --name-only --diff-filter=ACMR "$tidy_base"...HEAD \
                   -- 'src/*.cpp' 2>/dev/null || true)
    else
      tidy_files=$(find src -name "*.cpp")
    fi
    if [ -n "$tidy_files" ]; then
      # shellcheck disable=SC2086
      if ! printf '%s\n' $tidy_files \
          | xargs -n 8 -P "$(nproc)" "$clang_tidy" ${tidy_load[@]+"${tidy_load[@]}"} \
              -p build --quiet; then
        fail "clang-tidy reported findings (see above)"
      fi
    fi
  fi
fi

# ---------------------------------------------------------------------------
# Format gate (opt-in): clang-format over files changed vs the base ref.
# Scoped to changed files so adopting .clang-format needed no flag-day
# reformat; the tree converges as files get touched.
# ---------------------------------------------------------------------------
if [ "$run_format" = 1 ]; then
  if ! command -v "$clang_format" >/dev/null 2>&1; then
    if [ "$require_tools" = 1 ]; then
      fail "$clang_format not found but --require-tools was given"
    else
      echo "lint: $clang_format not installed; skipping format gate (CI runs it)" >&2
    fi
  else
    changed=$(git diff --name-only --diff-filter=ACMR "$format_base"...HEAD -- \
              'src/*.cpp' 'src/*.hpp' 'tests/*.cpp' 'bench/*.cpp' 'bench/*.hpp' \
              'examples/*.cpp' 2>/dev/null || true)
    if [ -n "$changed" ]; then
      # shellcheck disable=SC2086
      if ! "$clang_format" --dry-run --Werror $changed; then
        fail "clang-format: files above differ from .clang-format style"
      fi
    fi
  fi
fi

if [ "$failures" -gt 0 ]; then
  echo "lint: $failures failure(s)" >&2
  exit 1
fi
echo "lint: OK"
