#!/usr/bin/env bash
# Executable spec for the static-analysis gates: every bad fixture in
# tests/lint_fixtures/ must be rejected by its gate, every good twin must
# pass. Registered as the `lint_fixtures` ctest (SKIP_RETURN_CODE 77).
#
# Usage:
#   scripts/test_lint_fixtures.sh                  # skip clang pair if absent
#   scripts/test_lint_fixtures.sh --require-clang  # missing clang = failure
#
# The ast_lint fixtures run everywhere (the builtin engine has no
# dependencies); the -Wthread-safety pair needs a clang++ (override with
# CLANG_CXX), which only CI guarantees.
set -u

cd "$(dirname "$0")/.."

require_clang=0
[ "${1:-}" = "--require-clang" ] && require_clang=1

if ! command -v python3 >/dev/null 2>&1; then
  echo "lint_fixtures: python3 not found; skipping" >&2
  exit 77
fi

failures=0
fail() {
  echo "FIXTURE FAIL: $*" >&2
  failures=$((failures + 1))
}

fixtures=tests/lint_fixtures

# --- ast_lint rules: bad must exit 1 with the right tag, good must exit 0 ---
expect_rule() { # <fixture> <rule-tag>
  local out status
  out=$(python3 scripts/ast_lint.py "$fixtures/$1" 2>&1)
  status=$?
  if [ "$status" -ne 1 ]; then
    fail "$1: expected ast_lint exit 1 (findings), got $status"
  elif ! printf '%s\n' "$out" | grep -q "\[$2\]"; then
    fail "$1: expected a [$2] finding, got: $out"
  fi
}
expect_clean() { # <fixture>
  local out
  if ! out=$(python3 scripts/ast_lint.py "$fixtures/$1" 2>&1); then
    fail "$1: expected ast_lint to pass, got: $out"
  fi
}

expect_rule bad_hot_path_alloc.cc hot-path-alloc
expect_clean good_hot_path_alloc.cc
expect_rule bad_hot_path_string_obs.cc hot-path-string-obs
expect_clean good_hot_path_string_obs.cc
expect_rule bad_atomic_order.cc atomic-order
expect_clean good_atomic_order.cc

# --- -Wthread-safety pair: needs a clang compiler --------------------------
cxx="${CLANG_CXX:-clang++}"
if command -v "$cxx" >/dev/null 2>&1; then
  ts_flags=(-std=c++20 -fsyntax-only -Isrc -Wthread-safety -Werror=thread-safety)
  if "$cxx" "${ts_flags[@]}" "$fixtures/bad_guarded_member.cc" 2>/dev/null; then
    fail "bad_guarded_member.cc: expected -Werror=thread-safety to reject"
  fi
  if ! "$cxx" "${ts_flags[@]}" "$fixtures/good_guarded_member.cc"; then
    fail "good_guarded_member.cc: expected a clean -Wthread-safety compile"
  fi
elif [ "$require_clang" = 1 ]; then
  fail "$cxx not found but --require-clang was given"
else
  echo "lint_fixtures: $cxx not found; thread-safety pair skipped (CI runs it)" >&2
fi

if [ "$failures" -gt 0 ]; then
  echo "lint_fixtures: $failures failure(s)" >&2
  exit 1
fi
echo "lint_fixtures: OK"
