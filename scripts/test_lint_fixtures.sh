#!/usr/bin/env bash
# Executable spec for the static-analysis gates: every bad fixture in
# tests/lint_fixtures/ must be rejected by its gate, every good twin must
# pass. Registered as the `lint_fixtures` ctest (SKIP_RETURN_CODE 77).
#
# Usage:
#   scripts/test_lint_fixtures.sh                  # skip clang pair if absent
#   scripts/test_lint_fixtures.sh --require-clang  # missing clang = failure
#   scripts/test_lint_fixtures.sh --require-plugin # missing DQNTidyModule
#                                                  # = failure (implies
#                                                  # --require-clang)
#
# The ast_lint fixtures run everywhere (the builtin engine has no
# dependencies); the -Wthread-safety pair needs a clang++ (override with
# CLANG_CXX) and the dqn-* plugin pass needs build/tools/tidy/
# DQNTidyModule.so + clang-tidy (override with DQN_TIDY_PLUGIN/CLANG_TIDY),
# which only CI guarantees. On the rules both engines implement, the plugin
# must agree with the builtin floor verdict on every shared fixture.
set -u

cd "$(dirname "$0")/.."

require_clang=0
require_plugin=0
case "${1:-}" in
  --require-clang) require_clang=1 ;;
  --require-plugin) require_clang=1; require_plugin=1 ;;
esac

if ! command -v python3 >/dev/null 2>&1; then
  echo "lint_fixtures: python3 not found; skipping" >&2
  exit 77
fi

failures=0
fail() {
  echo "FIXTURE FAIL: $*" >&2
  failures=$((failures + 1))
}

fixtures=tests/lint_fixtures

# --- ast_lint rules: bad must exit 1 with the right tag, good must exit 0 ---
expect_rule() { # <fixture> <rule-tag>
  local out status
  out=$(python3 scripts/ast_lint.py "$fixtures/$1" 2>&1)
  status=$?
  if [ "$status" -ne 1 ]; then
    fail "$1: expected ast_lint exit 1 (findings), got $status"
  elif ! printf '%s\n' "$out" | grep -q "\[$2\]"; then
    fail "$1: expected a [$2] finding, got: $out"
  fi
}
expect_clean() { # <fixture>
  local out
  if ! out=$(python3 scripts/ast_lint.py "$fixtures/$1" 2>&1); then
    fail "$1: expected ast_lint to pass, got: $out"
  fi
}

expect_rule bad_hot_path_alloc.cc hot-path-alloc
expect_clean good_hot_path_alloc.cc
expect_rule bad_hot_path_string_obs.cc hot-path-string-obs
expect_clean good_hot_path_string_obs.cc
expect_rule bad_atomic_order.cc atomic-order
expect_clean good_atomic_order.cc
expect_rule bad_unordered_iteration.cc unordered-iteration
expect_clean good_unordered_iteration.cc
# Plugin-only rules: the textual floor has no type information, so it must
# treat these as clean — the DQNTidyModule pass below owns the rejection.
expect_clean bad_template_alias_alloc.cc
expect_clean good_template_alias_alloc.cc
expect_clean bad_narrowing_float.cc
expect_clean good_narrowing_float.cc

# --- DQNTidyModule plugin: semantic engine over the dqn fixtures -----------
# On the rules both engines implement (hot-path-alloc/string-obs, atomic
# order, unordered iteration) the plugin verdict must match the builtin one
# asserted above; the plugin-only pairs (template alias, narrowing) are
# rejected here and nowhere else.
plugin="${DQN_TIDY_PLUGIN:-build/tools/tidy/DQNTidyModule.so}"
tidy_bin="${CLANG_TIDY:-clang-tidy}"
expect_plugin() { # <fixture> <check> <bad|good>
  local out
  out=$("$tidy_bin" --load="$plugin" --checks="-*,$2" --quiet \
        --config="{CheckOptions: {dqn-narrowing-float.PathFilter: '.*'}}" \
        "$fixtures/$1" -- -std=c++20 -Isrc -w 2>/dev/null)
  if [ "$3" = bad ]; then
    if ! printf '%s\n' "$out" | grep -q "\[$2\]"; then
      fail "$1: expected the plugin to report [$2], got: $out"
    fi
  elif printf '%s\n' "$out" | grep -q "\[dqn-"; then
    fail "$1: expected a clean plugin pass, got: $out"
  fi
}
if [ -f "$plugin" ] && command -v "$tidy_bin" >/dev/null 2>&1; then
  expect_plugin bad_hot_path_alloc.cc dqn-hot-path-alloc bad
  expect_plugin good_hot_path_alloc.cc dqn-hot-path-alloc good
  expect_plugin bad_hot_path_string_obs.cc dqn-hot-path-alloc bad
  expect_plugin good_hot_path_string_obs.cc dqn-hot-path-alloc good
  expect_plugin bad_atomic_order.cc dqn-atomic-order bad
  expect_plugin good_atomic_order.cc dqn-atomic-order good
  expect_plugin bad_unordered_iteration.cc dqn-unordered-iteration bad
  expect_plugin good_unordered_iteration.cc dqn-unordered-iteration good
  expect_plugin bad_template_alias_alloc.cc dqn-hot-path-alloc bad
  expect_plugin good_template_alias_alloc.cc dqn-hot-path-alloc good
  expect_plugin bad_narrowing_float.cc dqn-narrowing-float bad
  expect_plugin good_narrowing_float.cc dqn-narrowing-float good
elif [ "$require_plugin" = 1 ]; then
  fail "DQNTidyModule plugin pass requested (--require-plugin) but '$plugin' or '$tidy_bin' is missing"
else
  echo "lint_fixtures: plugin '$plugin' or '$tidy_bin' not available; dqn-* plugin pass skipped (CI runs it)" >&2
fi

# --- -Wthread-safety pair: needs a clang compiler --------------------------
cxx="${CLANG_CXX:-clang++}"
if command -v "$cxx" >/dev/null 2>&1; then
  ts_flags=(-std=c++20 -fsyntax-only -Isrc -Wthread-safety -Werror=thread-safety)
  if "$cxx" "${ts_flags[@]}" "$fixtures/bad_guarded_member.cc" 2>/dev/null; then
    fail "bad_guarded_member.cc: expected -Werror=thread-safety to reject"
  fi
  if ! "$cxx" "${ts_flags[@]}" "$fixtures/good_guarded_member.cc"; then
    fail "good_guarded_member.cc: expected a clean -Wthread-safety compile"
  fi
elif [ "$require_clang" = 1 ]; then
  fail "$cxx not found but --require-clang was given"
else
  echo "lint_fixtures: $cxx not found; thread-safety pair skipped (CI runs it)" >&2
fi

if [ "$failures" -gt 0 ]; then
  echo "lint_fixtures: $failures failure(s)" >&2
  exit 1
fi
echo "lint_fixtures: OK"
