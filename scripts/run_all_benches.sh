#!/usr/bin/env bash
# Regenerate every table and figure (EXPERIMENTS.md). PTMs are trained on
# first use and cached under ./dqn_models (or $DQN_MODEL_DIR), so the first
# run is dominated by training time and re-runs are fast.
#
# Knobs: DQN_BENCH_SCALE (default 1.0), DQN_PTM_ARCH=mlp|attention,
#        DQN_BENCH_FULL=1 (adds the 32/64-port Table 2 rows).
set -u
cd "$(dirname "$0")/.."
echo "DQN_BENCH_SCALE=${DQN_BENCH_SCALE:-1.0} DQN_PTM_ARCH=${DQN_PTM_ARCH:-mlp}"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo
  echo "##### $b"
  "$b"
done
