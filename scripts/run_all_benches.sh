#!/usr/bin/env bash
# Regenerate every table and figure (EXPERIMENTS.md). PTMs are trained on
# first use and cached under ./dqn_models (or $DQN_MODEL_DIR), so the first
# run is dominated by training time and re-runs are fast.
#
# Knobs: DQN_BENCH_SCALE (default 1.0), DQN_PTM_ARCH=mlp|attention,
#        DQN_BENCH_FULL=1 (adds the 32/64-port Table 2 rows).
#
# --json [dir]: additionally profile every bench through the observability
# sink (obs::sink) and write one registry snapshot per binary as
# <dir>/<bench>.json (default dir: bench_json). Tables still print as usual.
set -u
cd "$(dirname "$0")/.."

json_dir=""
if [ "${1:-}" = "--json" ]; then
  json_dir="${2:-bench_json}"
  mkdir -p "$json_dir"
  echo "profiling enabled: JSON snapshots under $json_dir/"
fi

echo "DQN_BENCH_SCALE=${DQN_BENCH_SCALE:-1.0} DQN_PTM_ARCH=${DQN_PTM_ARCH:-mlp}"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo
  echo "##### $b"
  if [ -n "$json_dir" ]; then
    DQN_BENCH_JSON="$json_dir/$(basename "$b").json" "$b"
  else
    "$b"
  fi
done
