#!/usr/bin/env bash
# Regenerate every table and figure (EXPERIMENTS.md). PTMs are trained on
# first use and cached under ./dqn_models (or $DQN_MODEL_DIR), so the first
# run is dominated by training time and re-runs are fast.
#
# Knobs: DQN_BENCH_SCALE (default 1.0), DQN_PTM_ARCH=mlp|attention,
#        DQN_BENCH_FULL=1 (adds the 32/64-port Table 2 rows).
#
# --json [dir]: additionally profile every bench through the observability
# sink (obs::sink) and write one registry snapshot per binary as
# <dir>/<bench>.json (default dir: bench_json). Tables still print as usual,
# and one summary line per run — bench name, wall seconds, key counters,
# git SHA — is appended to BENCH_results.json at the repo root (JSON lines),
# building the perf trajectory across commits.
set -u
cd "$(dirname "$0")/.."

json_dir=""
if [ "${1:-}" = "--json" ]; then
  json_dir="${2:-bench_json}"
  mkdir -p "$json_dir"
  echo "profiling enabled: JSON snapshots under $json_dir/"
fi

# Append one JSON-lines summary of a profiled run to BENCH_results.json.
# Needs python3 for snapshot parsing; degrades to a warning without it.
append_summary() {
  bench_name="$1"; snapshot="$2"; wall="$3"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "[bench-json] python3 not found; skipping BENCH_results.json entry"
    return 0
  fi
  python3 - "$bench_name" "$snapshot" "$wall" >> BENCH_results.json <<'PY' \
    || echo "[bench-json] failed to summarize $snapshot"
import datetime
import json
import socket
import subprocess
import sys

bench, path, wall = sys.argv[1], sys.argv[2], float(sys.argv[3])
try:
    with open(path) as f:
        snap = json.load(f)
except Exception:
    snap = {}
sha = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                     capture_output=True, text=True).stdout.strip()
counters = snap.get("counters", {})
keys = ["engine.iterations", "engine.device_inferences", "engine.deliveries",
        "engine.steals",
        "des.events", "des.deliveries", "ptm.epochs", "ptm.batches",
        "sec.corrections", "trace.dropped",
        "tiered.analytical_packets", "tiered.ptm_packets",
        "tiered.promotions", "tiered.demotions", "tiered.budget_promotions"]
gauges = snap.get("gauges", {})
gauge_keys = ["tiered.analytical_fraction", "table7.tiered_speedup",
              "table7.ptm_wall_seconds", "table7.tiered_wall_seconds",
              "table7.telemetry_overhead_fraction",
              "table7.measured_wall_w1", "table7.measured_wall_w2",
              "table7.measured_wall_w4", "table7.measured_wall_w8",
              "table7.measured_speedup_w2", "table7.measured_speedup_w4",
              "table7.measured_speedup_w8",
              "engine.cross_shard_links", "engine.shard_imbalance",
              "quickstart.measured_speedup"]
entry = {
    "bench": bench,
    "wall_seconds": wall,
    "git_sha": sha,
    "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
    "hostname": socket.gethostname(),
    "counters": {k: counters[k] for k in keys if k in counters},
}
# End-of-process resource gauges published by bench_sink()'s atexit hook
# (obs/telemetry/resource_stats.hpp): peak RSS is the headline number for
# tracking bench memory across commits.
rss = gauges.get("process.max_rss_bytes")
if rss is not None:
    entry["peak_rss_bytes"] = int(rss)
picked_gauges = {k: gauges[k] for k in gauge_keys if k in gauges}
if picked_gauges:
    entry["gauges"] = picked_gauges
print(json.dumps(entry, sort_keys=True))
PY
}

echo "DQN_BENCH_SCALE=${DQN_BENCH_SCALE:-1.0} DQN_PTM_ARCH=${DQN_PTM_ARCH:-mlp}"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo
  echo "##### $b"
  if [ -n "$json_dir" ]; then
    snapshot="$json_dir/$(basename "$b").json"
    start=$(date +%s.%N)
    DQN_BENCH_JSON="$snapshot" "$b"
    end=$(date +%s.%N)
    append_summary "$(basename "$b")" "$snapshot" \
      "$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')"
  else
    "$b"
  fi
done
