#!/usr/bin/env bash
# Run every example application in sequence. The shared device model trains
# on first use (cached in ./dqn_models); attention_inspection trains its own
# small attention model each run by design.
set -u
cd "$(dirname "$0")/.."
for e in quickstart capacity_planning scheduler_tuning topology_design \
         wan_sla attention_inspection; do
  echo
  echo "##### build/examples/$e"
  "build/examples/$e"
done
