// DQNTidyModule: out-of-tree clang-tidy module carrying the repo's
// compiler-grade determinism and numeric-safety checks. Loaded with
//
//   clang-tidy -load build/tools/tidy/DQNTidyModule.so -checks=dqn-*
//
// The four checks are the semantic upgrade of scripts/ast_lint.py's textual
// floor (see docs/STATIC_ANALYSIS.md for the which-layer-catches-what
// matrix):
//
//   dqn-hot-path-alloc       allocation / string-keyed obs inside
//                            DQN_HOT_PATH bodies, seeing through template
//                            aliases and one level of visible helper calls
//   dqn-unordered-iteration  order-sensitive range-for over std::unordered_*
//   dqn-atomic-order         defaulted std::memory_order (seq_cst by
//                            omission), including operator sugar
//   dqn-narrowing-float      implicit double->float and value-changing
//                            integral narrowing in the numeric layers
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "AtomicOrderCheck.h"
#include "HotPathAllocCheck.h"
#include "NarrowingFloatCheck.h"
#include "UnorderedIterationCheck.h"

namespace clang::tidy::dqn {

class DQNTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<HotPathAllocCheck>("dqn-hot-path-alloc");
    Factories.registerCheck<UnorderedIterationCheck>("dqn-unordered-iteration");
    Factories.registerCheck<AtomicOrderCheck>("dqn-atomic-order");
    Factories.registerCheck<NarrowingFloatCheck>("dqn-narrowing-float");
  }
};

namespace {
ClangTidyModuleRegistry::Add<DQNTidyModule> X(
    "dqn-module", "DeepQueueNet determinism and numeric-safety checks.");
}  // namespace

}  // namespace clang::tidy::dqn

// Anchor so -load keeps the module object file alive.
volatile int DQNTidyModuleAnchorSource = 0;
