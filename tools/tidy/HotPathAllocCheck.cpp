#include "HotPathAllocCheck.h"

#include "clang/AST/Attr.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/Lexer.h"

using namespace clang::ast_matchers;

namespace clang::tidy::dqn {

namespace {

constexpr llvm::StringLiteral HotPathAnnotation = "dqn::hot_path";

bool isHotPathAnnotated(const FunctionDecl *FD) {
  for (const auto *A : FD->specific_attrs<AnnotateAttr>())
    if (A->getAnnotation() == HotPathAnnotation)
      return true;
  return false;
}

// std:: record types whose construction (or growth) implies heap allocation.
bool isAllocatingStdRecord(const CXXRecordDecl *RD) {
  if (RD == nullptr || !RD->isInStdNamespace())
    return false;
  static const llvm::StringRef Names[] = {
      "vector",         "deque",
      "list",           "forward_list",
      "map",            "multimap",
      "set",            "multiset",
      "unordered_map",  "unordered_multimap",
      "unordered_set",  "unordered_multiset",
      "queue",          "priority_queue",
      "stack",          "function",
      "basic_string",   "basic_stringstream",
      "basic_ostringstream", "basic_istringstream"};
  const StringRef Name = RD->getName();
  for (const StringRef Candidate : Names)
    if (Name == Candidate)
      return true;
  return false;
}

bool isGrowthMember(StringRef Name) {
  return Name == "push_back" || Name == "emplace_back" ||
         Name == "push_front" || Name == "emplace_front" ||
         Name == "emplace" || Name == "insert" || Name == "append" ||
         Name == "push" || Name == "resize" || Name == "reserve";
}

bool isHeapCallee(StringRef Name) {
  return Name == "malloc" || Name == "calloc" || Name == "realloc" ||
         Name == "strdup" || Name == "aligned_alloc";
}

// String-ish parameter/argument types: the shapes through which a
// string-keyed observability lookup travels.
bool isStringish(QualType QT) {
  QT = QT.getNonReferenceType().getCanonicalType();
  if (const auto *PT = QT->getAs<PointerType>())
    return PT->getPointeeType()->isCharType();
  if (const auto *RD = QT->getAsCXXRecordDecl())
    return RD->isInStdNamespace() && (RD->getName() == "basic_string" ||
                                      RD->getName() == "basic_string_view");
  return false;
}

// True when Loc is spelled inside the expansion of a DQN_* macro (contract
// macros: their failure paths allocate by design and are cold).
bool inDQNMacro(SourceLocation Loc, const SourceManager &SM,
                const LangOptions &LangOpts) {
  while (Loc.isMacroID()) {
    const StringRef Name = Lexer::getImmediateMacroName(Loc, SM, LangOpts);
    if (Name.starts_with("DQN_"))
      return true;
    Loc = SM.getImmediateMacroCallerLoc(Loc);
  }
  return false;
}

// Walks a hot-path body. Depth 0 is the annotated function itself; depth 1
// is a helper whose body is visible in the TU (reported at the call site in
// the hot function, with a note at the offending expression).
class HotBodyVisitor : public RecursiveASTVisitor<HotBodyVisitor> {
 public:
  HotBodyVisitor(HotPathAllocCheck &Check, ASTContext &Ctx,
                 const FunctionDecl *HotFn, int Depth,
                 SourceLocation CallSite)
      : Check_{Check}, Ctx_{Ctx}, HotFn_{HotFn}, Depth_{Depth},
        CallSite_{CallSite} {}

  bool VisitCXXNewExpr(CXXNewExpr *E) {
    report(E->getBeginLoc(), "operator new in hot path");
    return true;
  }

  bool VisitCXXConstructExpr(CXXConstructExpr *E) {
    const CXXConstructorDecl *Ctor = E->getConstructor();
    if (Ctor == nullptr)
      return true;
    // Moves steal the existing buffer — no allocation (the DES event loop
    // moves a std::function out of the queue on every pop).
    if (Ctor->isMoveConstructor())
      return true;
    const CXXRecordDecl *RD = Ctor->getParent();
    if (!isAllocatingStdRecord(RD))
      return true;
    if (RD->getName() == "basic_string" && E->getNumArgs() > 0 &&
        isStringish(E->getArg(0)->getType()))
      report(E->getBeginLoc(),
             "implicit std::string temporary in hot path (a const char* "
             "meeting a std::string parameter allocates)");
    else
      report(E->getBeginLoc(),
             ("construction of allocating type 'std::" + RD->getName() +
              "' in hot path")
                 .str());
    return true;
  }

  bool VisitCXXMemberCallExpr(CXXMemberCallExpr *E) {
    const CXXMethodDecl *MD = E->getMethodDecl();
    if (MD == nullptr)
      return true;
    const StringRef Name = MD->getName();
    if (MD->getParent() != nullptr && MD->getParent()->isInStdNamespace() &&
        isGrowthMember(Name)) {
      report(E->getBeginLoc(),
             ("growing container call '" + Name + "' in hot path").str());
      return true;
    }
    // String-keyed observability: sink.count("name", v) and friends resolve
    // a name under a lock per call; hot code must use pre-resolved handles.
    // Any non-std recorder-shaped method with a string-ish first parameter
    // counts — mirroring the ast_lint.py floor's textual rule, so the two
    // engines agree on the shared fixtures.
    const bool ObsRecorder = Name == "count" || Name == "gauge" ||
                             Name == "observe" || Name == "event" ||
                             Name.ends_with("handle_for");
    if (ObsRecorder && MD->getParent() != nullptr &&
        !MD->getParent()->isInStdNamespace() && E->getNumArgs() > 0 &&
        isStringish(E->getArg(0)->getType()))
      report(E->getBeginLoc(),
             ("string-keyed observability call '" + Name +
              "' in hot path (resolve a handle outside the hot region)")
                 .str());
    return true;
  }

  bool VisitCXXOperatorCallExpr(CXXOperatorCallExpr *E) {
    // s += ... on std::basic_string grows the buffer.
    if (E->getOperator() != OO_PlusEqual)
      return true;
    if (const auto *MD = dyn_cast_or_null<CXXMethodDecl>(E->getDirectCallee()))
      if (MD->getParent() != nullptr && MD->getParent()->isInStdNamespace() &&
          MD->getParent()->getName() == "basic_string")
        report(E->getBeginLoc(), "std::string append in hot path");
    return true;
  }

  bool VisitCallExpr(CallExpr *E) {
    const FunctionDecl *Callee = E->getDirectCallee();
    if (Callee == nullptr)
      return true;
    if (const auto *II = Callee->getIdentifier())
      if (isHeapCallee(II->getName())) {
        report(E->getBeginLoc(),
               (II->getName() + "() in hot path").str());
        return true;
      }
    // One level of inlining-visible recursion: a thin helper with a body in
    // this TU cannot hide an allocation. Hot-annotated callees are skipped —
    // they are checked as roots in their own right.
    if (Depth_ > 0 || isa<CXXMemberCallExpr>(E))
      return true;
    const FunctionDecl *Def = nullptr;
    if (!Callee->hasBody(Def) || Def == nullptr)
      return true;
    if (Def->isInStdNamespace() || isHotPathAnnotated(Def))
      return true;
    const SourceManager &SM = Ctx_.getSourceManager();
    if (SM.isInSystemHeader(Def->getLocation()))
      return true;
    HotBodyVisitor Inner{Check_, Ctx_, HotFn_, Depth_ + 1, E->getBeginLoc()};
    Inner.TraverseStmt(Def->getBody());
    return true;
  }

 private:
  void report(SourceLocation Loc, const std::string &Message) {
    const SourceManager &SM = Ctx_.getSourceManager();
    if (inDQNMacro(Loc, SM, Ctx_.getLangOpts()))
      return;
    if (Depth_ == 0) {
      Check_.diag(Loc, "%0 (function %1 is DQN_HOT_PATH)")
          << Message << HotFn_;
    } else {
      Check_.diag(CallSite_,
                  "call into helper that allocates: %0 (function %1 is "
                  "DQN_HOT_PATH)")
          << Message << HotFn_;
      Check_.diag(Loc, "allocation inside the called helper is here",
                  DiagnosticIDs::Note);
    }
  }

  HotPathAllocCheck &Check_;
  ASTContext &Ctx_;
  const FunctionDecl *HotFn_;
  int Depth_;
  SourceLocation CallSite_;
};

}  // namespace

void HotPathAllocCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(functionDecl(isDefinition(), hasAttr(attr::Annotate),
                                  unless(isExpansionInSystemHeader()))
                         .bind("fn"),
                     this);
}

void HotPathAllocCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *FD = Result.Nodes.getNodeAs<FunctionDecl>("fn");
  if (FD == nullptr || FD->isTemplateInstantiation() ||
      !isHotPathAnnotated(FD) || !FD->hasBody())
    return;
  HotBodyVisitor Visitor{*this, *Result.Context, FD, /*Depth=*/0,
                         FD->getBeginLoc()};
  Visitor.TraverseStmt(FD->getBody());
}

}  // namespace clang::tidy::dqn
