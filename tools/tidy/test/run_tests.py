#!/usr/bin/env python3
"""Lit-style driver for the DQNTidyModule check corpus.

Each fixture <name>.cpp exercises the check dqn-<name-with-dashes>; every
line carrying a `// EXPECT: <check>` marker must produce exactly that
diagnostic, and no unmarked diagnostic may appear. Exit 77 (the ctest skip
convention) when the plugin or clang-tidy is unavailable.

Environment:
  DQN_TIDY_PLUGIN  path to DQNTidyModule.so (required to run)
  CLANG_TIDY       clang-tidy binary (default: clang-tidy)
"""
import os
import re
import shutil
import subprocess
import sys

TEST_DIR = os.path.dirname(os.path.abspath(__file__))
EXPECT = re.compile(r"//\s*EXPECT:\s*(dqn-[a-z-]+)")
DIAG = re.compile(r"^(.*?):(\d+):\d+:\s+(?:warning|error):.*\[(dqn-[a-z-]+)\]")

# Checks whose fixtures need extra per-check configuration.
CHECK_CONFIG = {
    "dqn-narrowing-float":
        "{CheckOptions: {dqn-narrowing-float.PathFilter: '.*'}}",
}


def main() -> int:
    plugin = os.environ.get("DQN_TIDY_PLUGIN", "")
    tidy = os.environ.get("CLANG_TIDY", "clang-tidy")
    if not plugin or not os.path.exists(plugin):
        print("tidy_plugin_fixtures: DQN_TIDY_PLUGIN not set/built; skipping")
        return 77
    if shutil.which(tidy) is None:
        print(f"tidy_plugin_fixtures: {tidy} not found; skipping")
        return 77

    failures = 0
    fixtures = sorted(
        f for f in os.listdir(TEST_DIR) if f.endswith(".cpp"))
    for fixture in fixtures:
        check = "dqn-" + fixture[:-len(".cpp")].replace("_", "-")
        path = os.path.join(TEST_DIR, fixture)
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        expected = {
            (i + 1, m.group(1))
            for i, line in enumerate(lines)
            for m in [EXPECT.search(line)] if m
        }

        cmd = [tidy, f"--load={plugin}", f"--checks=-*,{check}",
               "--quiet"]
        if check in CHECK_CONFIG:
            cmd.append(f"--config={CHECK_CONFIG[check]}")
        cmd += [path, "--", "-std=c++20", "-w"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if "Unable to load" in proc.stderr or "CommonOptionsParser" in proc.stderr:
            print(f"tidy_plugin_fixtures: clang-tidy could not load the "
                  f"plugin:\n{proc.stderr}", file=sys.stderr)
            return 1

        actual = set()
        for line in proc.stdout.splitlines():
            m = DIAG.match(line)
            if m and os.path.abspath(m.group(1)) == path:
                actual.add((int(m.group(2)), m.group(3)))

        for line_no, name in sorted(expected - actual):
            print(f"FAIL {fixture}:{line_no}: expected [{name}], "
                  f"no diagnostic emitted", file=sys.stderr)
            failures += 1
        for line_no, name in sorted(actual - expected):
            print(f"FAIL {fixture}:{line_no}: unexpected [{name}] "
                  f"diagnostic", file=sys.stderr)
            failures += 1
        status = "ok" if expected == actual else "FAILED"
        print(f"{fixture}: {len(expected)} expected, "
              f"{len(actual)} emitted -> {status}")

    if failures:
        print(f"tidy_plugin_fixtures: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"tidy_plugin_fixtures: OK ({len(fixtures)} fixture(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
