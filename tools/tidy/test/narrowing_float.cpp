// Corpus for dqn-narrowing-float. run_tests.py sets PathFilter to '.*' so
// the fixture is in scope regardless of its path.
#include <cstdint>
#include <vector>

float feature_to_float(double feature) {
  return feature;  // EXPECT: dqn-narrowing-float
}

void fill_row(std::vector<float> &row, double sojourn, double rate) {
  row[0] = sojourn;       // EXPECT: dqn-narrowing-float
  row[1] = rate * 2.0;    // EXPECT: dqn-narrowing-float
}

std::int16_t to_port(std::int64_t node) {
  return node;  // EXPECT: dqn-narrowing-float
}

// Exactly representable constants survive the conversion: exempt.
float good_constants() {
  float quarter = 0.25;
  float big = 4096.0;
  return quarter + big;
}

std::int16_t good_constant_int() {
  return 512;  // fits in int16 exactly
}

// Explicit casts document the decision and are out of scope.
float good_explicit(double feature) {
  return static_cast<float>(feature);
}

// Widening is always fine.
double good_widening(float stored) {
  return stored;
}
