// Corpus for dqn-atomic-order.
#include <atomic>
#include <cstdint>

using count_t = std::atomic<std::uint64_t>;  // alias must not hide the type

std::atomic<std::uint64_t> g_events{0};
std::atomic<bool> g_stop{false};
count_t g_aliased{0};

void bad_defaulted_orders() {
  g_events.store(1);                 // EXPECT: dqn-atomic-order
  (void)g_events.load();             // EXPECT: dqn-atomic-order
  (void)g_events.fetch_add(1);       // EXPECT: dqn-atomic-order
  (void)g_aliased.fetch_add(1);      // EXPECT: dqn-atomic-order
  (void)g_events.exchange(7);        // EXPECT: dqn-atomic-order
}

void bad_operator_sugar() {
  ++g_events;                        // EXPECT: dqn-atomic-order
  g_events += 2;                     // EXPECT: dqn-atomic-order
  g_stop = true;                     // EXPECT: dqn-atomic-order
  if (g_stop)                        // EXPECT: dqn-atomic-order
    g_events.store(0, std::memory_order_relaxed);
}

void good_explicit_orders() {
  g_events.store(1, std::memory_order_relaxed);
  (void)g_events.load(std::memory_order_acquire);
  (void)g_events.fetch_add(1, std::memory_order_relaxed);
  (void)g_aliased.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t expected = 0;
  (void)g_events.compare_exchange_strong(expected, 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  if (g_stop.load(std::memory_order_relaxed))
    g_events.store(0, std::memory_order_relaxed);
}
