// Corpus for dqn-unordered-iteration.
#include <cstdint>
#include <iostream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

double sum_values(const std::unordered_map<std::uint64_t, double> &m) {
  double total = 0.0;
  for (const auto &[pid, v] : m)  // EXPECT: dqn-unordered-iteration
    total += v;
  return total;
}

void print_keys(const std::unordered_set<std::uint64_t> &s) {
  for (const auto pid : s)  // EXPECT: dqn-unordered-iteration
    std::cout << pid << '\n';
}

void scale_in_place(std::unordered_map<std::uint64_t, double> &m) {
  for (auto &[pid, v] : m)  // EXPECT: dqn-unordered-iteration
    v *= 2.0;
}

void collect(const std::unordered_map<std::uint64_t, double> &m,
             std::vector<double> &out) {
  for (const auto &[pid, v] : m)  // EXPECT: dqn-unordered-iteration
    out.push_back(v);
}

// Annotated with a rationale: silenced.
std::uint64_t max_key(const std::unordered_map<std::uint64_t, double> &m) {
  std::uint64_t best = 0;
  // dqn-order-insensitive: max over the key set is commutative and exact
  // (integer comparison), so visit order cannot change the result.
  for (const auto &[pid, v] : m)
    best += pid;  // integer sum: exact in any order, annotation documents it
  return best;
}

// Annotation without a rationale is itself a finding.
double annotated_badly(const std::unordered_map<std::uint64_t, double> &m) {
  double total = 0.0;
  // dqn-order-insensitive
  for (const auto &[pid, v] : m)  // EXPECT: dqn-unordered-iteration
    total += v;
  return total;
}

// Benign read-only traversal: no accumulation, no output, no mutation.
bool contains_large(const std::unordered_map<std::uint64_t, double> &m) {
  for (const auto &[pid, v] : m)
    if (v > 1e9)
      return true;
  return false;
}

// Ordered containers are outside this check's scope.
double sum_vector(const std::vector<double> &v) {
  double total = 0.0;
  for (const auto x : v)
    total += x;
  return total;
}
