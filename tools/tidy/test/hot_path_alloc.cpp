// Corpus for dqn-hot-path-alloc. Each `// EXPECT: <check>` marks a line the
// plugin must flag; any unmarked diagnostic (or unmatched marker) fails the
// run_tests.py driver.
#include <cstdint>
#include <string>
#include <vector>

#define DQN_HOT_PATH __attribute__((annotate("dqn::hot_path")))
// Stand-in for the repo's contract macros: cold failure paths may allocate.
#define DQN_ENSURE_LIKE(cond) \
  do {                        \
    if (!(cond))              \
      throw std::string{"x"}; \
  } while (0)

namespace dqn::obs {
struct sink {
  void count(const std::string &name, double v);
  void observe(const char *name, double v);
};
}  // namespace dqn::obs

// Template alias: no textual growth call, but constructing it allocates.
using buffer_t = std::vector<double>;

void takes_name(const std::string &name);

// Helper with a visible body: one level of recursion must see the push_back.
inline void record_into(std::vector<double> &out, double v) {
  out.push_back(v);  // fine here: record_into itself is not hot
}

DQN_HOT_PATH double bad_alloc_cases(std::vector<double> &acc, double v) {
  buffer_t scratch;              // EXPECT: dqn-hot-path-alloc
  acc.push_back(v);              // EXPECT: dqn-hot-path-alloc
  takes_name("per.packet.key");  // EXPECT: dqn-hot-path-alloc
  record_into(acc, v);           // EXPECT: dqn-hot-path-alloc
  auto *raw = new double{v};     // EXPECT: dqn-hot-path-alloc
  delete raw;
  return scratch.empty() ? v : scratch[0];
}

DQN_HOT_PATH void bad_string_obs(dqn::obs::sink &s, double v) {
  s.count("des.events", v);  // EXPECT: dqn-hot-path-alloc
  s.observe("lat", v);       // EXPECT: dqn-hot-path-alloc
}

DQN_HOT_PATH double good_hot(const std::vector<double> &rows, std::size_t i,
                             double v) {
  DQN_ENSURE_LIKE(i < rows.size());  // contract macro: exempt
  return rows[i] * v;
}

// Not annotated: allocation is allowed.
double cold_path(std::vector<double> &acc, double v) {
  acc.push_back(v);
  return acc.back();
}
