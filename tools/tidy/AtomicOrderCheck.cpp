#include "AtomicOrderCheck.h"

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/OperatorKinds.h"

using namespace clang::ast_matchers;

namespace clang::tidy::dqn {

namespace {

// libstdc++ implements std::atomic<T> member functions on internal bases;
// all of them live in namespace std.
AST_MATCHER(CXXRecordDecl, isAtomicRecord) {
  if (!Node.isInStdNamespace())
    return false;
  const StringRef Name = Node.getName();
  return Name == "atomic" || Name == "atomic_flag" || Name == "atomic_ref" ||
         Name == "__atomic_base" || Name == "__atomic_float" ||
         Name == "__atomic_ref";
}

bool isMemoryOrderType(QualType QT) {
  const auto *ED = QT.getNonReferenceType()
                       .getCanonicalType()
                       ->getAsTagDecl();
  return ED != nullptr && ED->isInStdNamespace() &&
         ED->getName() == "memory_order";
}

}  // namespace

void AtomicOrderCheck::registerMatchers(MatchFinder *Finder) {
  const auto AtomicMethod = cxxMethodDecl(ofClass(cxxRecordDecl(isAtomicRecord())));
  // Explicit member calls (load/store/exchange/fetch_*/compare_exchange_*/
  // test_and_set/...) that let a memory_order parameter default.
  Finder->addMatcher(cxxMemberCallExpr(callee(AtomicMethod),
                                       hasAnyArgument(cxxDefaultArgExpr()),
                                       unless(isExpansionInSystemHeader()))
                         .bind("defaulted"),
                     this);
  // Operator sugar: =, ++, --, +=, -=, &=, |=, ^= on an atomic are seq_cst
  // with no way to spell an order.
  Finder->addMatcher(cxxOperatorCallExpr(callee(AtomicMethod),
                                         unless(isExpansionInSystemHeader()))
                         .bind("operator"),
                     this);
  // Implicit loads through the conversion operator: `if (flag)`, `x + ctr`.
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxConversionDecl(
                            ofClass(cxxRecordDecl(isAtomicRecord())))),
                        unless(isExpansionInSystemHeader()))
          .bind("conversion"),
      this);
}

void AtomicOrderCheck::check(const MatchFinder::MatchResult &Result) {
  if (const auto *Call =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("defaulted")) {
    // Only flag when the defaulted argument is a memory_order (value
    // parameters with other defaulted types are not this check's business).
    for (const Expr *Arg : Call->arguments()) {
      const auto *Defaulted = dyn_cast<CXXDefaultArgExpr>(Arg);
      if (Defaulted == nullptr ||
          !isMemoryOrderType(Defaulted->getParam()->getType()))
        continue;
      diag(Call->getExprLoc(),
           "atomic %0 relies on the defaulted memory order (seq_cst); "
           "state the order explicitly")
          << Call->getMethodDecl();
      return;
    }
    return;
  }
  if (const auto *Op = Result.Nodes.getNodeAs<CXXOperatorCallExpr>("operator")) {
    diag(Op->getExprLoc(),
         "atomic operator %0 is implicitly seq_cst; use the explicit member "
         "call with a stated memory order")
        << getOperatorSpelling(Op->getOperator());
    return;
  }
  if (const auto *Conv =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("conversion")) {
    diag(Conv->getExprLoc(),
         "implicit atomic load through the conversion operator is seq_cst; "
         "use .load() with a stated memory order");
  }
}

}  // namespace clang::tidy::dqn
