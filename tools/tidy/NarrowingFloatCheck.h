// dqn-narrowing-float: implicit floating-point narrowing (double -> float,
// long double -> double) and width-reducing implicit integral conversions in
// the numeric layers. The PTM's features, targets, and analytical bounds are
// all double; a silent truncation to float (e.g. a float local fed from a
// double expression, or a float model parameter receiving a double feature)
// quietly halves the mantissa and changes predictions between builds.
//
// Scope is limited by the PathFilter option (a POSIX-ish regex over the
// file path, default `src/(nn|core|queueing)/` per the repo's numeric core);
// constants that are exactly representable in the destination type are
// exempt (`float x = 0.25;` is not a finding).
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

#include <string>

namespace clang::tidy::dqn {

class NarrowingFloatCheck : public ClangTidyCheck {
 public:
  NarrowingFloatCheck(StringRef Name, ClangTidyContext *Context);
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string PathFilter;
};

}  // namespace clang::tidy::dqn
