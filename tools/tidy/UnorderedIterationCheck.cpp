#include "UnorderedIterationCheck.h"

#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::dqn {

namespace {

constexpr llvm::StringLiteral Annotation = "dqn-order-insensitive";

bool isUnorderedStdContainer(QualType QT) {
  const auto *RD = QT.getNonReferenceType()->getAsCXXRecordDecl();
  if (RD == nullptr || !RD->isInStdNamespace())
    return false;
  const StringRef Name = RD->getName();
  return Name == "unordered_map" || Name == "unordered_multimap" ||
         Name == "unordered_set" || Name == "unordered_multiset";
}

bool isGrowthMember(StringRef Name) {
  return Name == "push_back" || Name == "emplace_back" || Name == "emplace" ||
         Name == "insert" || Name == "append" || Name == "push_front" ||
         Name == "push";
}

// Result of scanning the loop line plus its contiguous leading `//` block.
enum class AnnotationState { Absent, MissingRationale, Present };

AnnotationState annotationState(const CXXForRangeStmt *Loop,
                                const SourceManager &SM) {
  const SourceLocation Loc = SM.getExpansionLoc(Loop->getBeginLoc());
  const FileID FID = SM.getFileID(Loc);
  bool Invalid = false;
  const StringRef Buffer = SM.getBufferData(FID, &Invalid);
  if (Invalid)
    return AnnotationState::Absent;
  const unsigned LoopLine = SM.getExpansionLineNumber(Loc);

  llvm::SmallVector<StringRef, 64> Lines;
  Buffer.split(Lines, '\n');
  // Window: the loop line itself, then contiguous `//` comment lines above.
  std::string Window;
  if (LoopLine >= 1 && LoopLine <= Lines.size())
    Window += Lines[LoopLine - 1];
  for (unsigned L = LoopLine - 1; L >= 1; --L) {
    const StringRef Trimmed = Lines[L - 1].ltrim();
    if (!Trimmed.starts_with("//"))
      break;
    Window += '\n';
    Window += Trimmed;
  }
  const std::size_t Pos = Window.find(Annotation.str());
  if (Pos == std::string::npos)
    return AnnotationState::Absent;
  // Rationale: a ':' after the tag followed by a non-space character.
  StringRef After = StringRef(Window).substr(Pos + Annotation.size()).ltrim();
  if (!After.starts_with(":"))
    return AnnotationState::MissingRationale;
  After = After.drop_front(1).ltrim(" \t");
  return After.empty() || After.starts_with("\n")
             ? AnnotationState::MissingRationale
             : AnnotationState::Present;
}

// Collects the order-sensitivity reasons in a loop body.
class BodyVisitor : public RecursiveASTVisitor<BodyVisitor> {
 public:
  BodyVisitor(const SourceManager &SM, SourceRange LoopRange)
      : SM_{SM}, LoopRange_{LoopRange} {}

  bool VisitBinaryOperator(BinaryOperator *BO) {
    if (BO->getOpcode() == BO_Shl) {
      // Stream output: << whose LHS is of class type (ostream-ish).
      if (BO->getLHS()->getType()->isRecordType())
        addReason("emits stream output");
      return true;
    }
    if (!BO->isCompoundAssignmentOp())
      return true;
    if (declaredOutsideLoop(BO->getLHS())) {
      if (BO->getLHS()->getType()->isFloatingType())
        addReason("accumulates floating-point state declared outside the "
                  "loop (order-dependent rounding)");
      else
        addReason("accumulates state declared outside the loop");
    }
    return true;
  }

  bool VisitCXXOperatorCallExpr(CXXOperatorCallExpr *E) {
    if (E->getOperator() == OO_LessLess) {
      addReason("emits stream output");
      return true;
    }
    if (E->isAssignmentOp() && E->getNumArgs() >= 1 &&
        E->getOperator() != OO_Equal && declaredOutsideLoop(E->getArg(0)))
      addReason("accumulates state declared outside the loop");
    return true;
  }

  bool VisitCXXMemberCallExpr(CXXMemberCallExpr *E) {
    const CXXMethodDecl *MD = E->getMethodDecl();
    if (MD == nullptr || !isGrowthMember(MD->getName()))
      return true;
    if (declaredOutsideLoop(E->getImplicitObjectArgument()))
      addReason("appends to a container declared outside the loop");
    return true;
  }

  const std::vector<std::string> &reasons() const { return Reasons_; }

 private:
  // True when the expression's ultimate declaration lives outside the loop's
  // source range (member state counts as outside).
  bool declaredOutsideLoop(const Expr *E) {
    if (E == nullptr)
      return false;
    E = E->IgnoreParenImpCasts();
    if (const auto *DRE = dyn_cast<DeclRefExpr>(E)) {
      const SourceLocation DeclLoc =
          SM_.getExpansionLoc(DRE->getDecl()->getLocation());
      return !SM_.isPointWithin(DeclLoc, SM_.getExpansionLoc(LoopRange_.getBegin()),
                                SM_.getExpansionLoc(LoopRange_.getEnd()));
    }
    if (isa<MemberExpr>(E) || isa<CXXThisExpr>(E))
      return true;
    if (const auto *UO = dyn_cast<UnaryOperator>(E))
      return declaredOutsideLoop(UO->getSubExpr());
    if (const auto *ASE = dyn_cast<ArraySubscriptExpr>(E))
      return declaredOutsideLoop(ASE->getBase());
    return false;
  }

  void addReason(StringRef Reason) {
    for (const std::string &Existing : Reasons_)
      if (Existing == Reason)
        return;
    Reasons_.push_back(Reason.str());
  }

  const SourceManager &SM_;
  SourceRange LoopRange_;
  std::vector<std::string> Reasons_;
};

}  // namespace

void UnorderedIterationCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxForRangeStmt(unless(isExpansionInSystemHeader())).bind("loop"), this);
}

void UnorderedIterationCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Loop = Result.Nodes.getNodeAs<CXXForRangeStmt>("loop");
  if (Loop == nullptr || Loop->getRangeInit() == nullptr)
    return;
  if (!isUnorderedStdContainer(Loop->getRangeInit()->getType()))
    return;
  const SourceManager &SM = *Result.SourceManager;

  BodyVisitor Visitor{SM, Loop->getSourceRange()};
  Visitor.TraverseStmt(Loop->getBody());
  std::vector<std::string> Reasons = Visitor.reasons();
  if (const VarDecl *LoopVar = Loop->getLoopVariable())
    if (LoopVar->getType()->isReferenceType() &&
        !LoopVar->getType().getNonReferenceType().isConstQualified())
      Reasons.insert(Reasons.begin(),
                     "binds the element by non-const reference (mutation "
                     "through hash order)");
  if (Reasons.empty())
    return;

  switch (annotationState(Loop, SM)) {
  case AnnotationState::Present:
    return;
  case AnnotationState::MissingRationale:
    diag(Loop->getForLoc(),
         "'%0' annotation needs a rationale: write '// %0: <why order "
         "cannot matter>'")
        << StringRef(Annotation);
    return;
  case AnnotationState::Absent:
    break;
  }
  std::string Joined;
  for (const std::string &Reason : Reasons) {
    if (!Joined.empty())
      Joined += "; ";
    Joined += Reason;
  }
  diag(Loop->getForLoc(),
       "order-sensitive iteration over a std::unordered_ container: %0; "
       "iterate sorted keys (util::keyed_vector) or annotate '// %1: "
       "<rationale>'")
      << Joined << StringRef(Annotation);
}

}  // namespace clang::tidy::dqn
