#include "NarrowingFloatCheck.h"

#include <regex>

#include "clang/AST/APValue.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/APFloat.h"

using namespace clang::ast_matchers;

namespace clang::tidy::dqn {

NarrowingFloatCheck::NarrowingFloatCheck(StringRef Name,
                                         ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      PathFilter(Options.get("PathFilter", "src/(nn|core|queueing)/")) {}

void NarrowingFloatCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "PathFilter", PathFilter);
}

void NarrowingFloatCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      implicitCastExpr(anyOf(hasCastKind(CK_FloatingCast),
                             hasCastKind(CK_IntegralCast)),
                       unless(isExpansionInSystemHeader()))
          .bind("cast"),
      this);
}

void NarrowingFloatCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Cast = Result.Nodes.getNodeAs<ImplicitCastExpr>("cast");
  if (Cast == nullptr)
    return;
  ASTContext &Ctx = *Result.Context;
  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = SM.getExpansionLoc(Cast->getBeginLoc());
  if (Loc.isInvalid())
    return;

  // Scope gate: only files matching the PathFilter regex are in the numeric
  // core this check polices.
  const StringRef File = SM.getFilename(Loc);
  if (File.empty())
    return;
  try {
    if (!std::regex_search(File.str(), std::regex(PathFilter)))
      return;
  } catch (const std::regex_error &) {
    return;  // configuration error; clang-tidy reports unknown-option noise
  }

  const Expr *Sub = Cast->getSubExpr();
  const QualType SrcT = Sub->getType().getCanonicalType();
  const QualType DstT = Cast->getType().getCanonicalType();
  const uint64_t SrcBits = Ctx.getTypeSize(SrcT);
  const uint64_t DstBits = Ctx.getTypeSize(DstT);
  if (DstBits >= SrcBits)
    return;  // widening (or same-width) conversions preserve value ranges

  if (Cast->getCastKind() == CK_FloatingCast) {
    // Exempt constants that survive the conversion exactly.
    Expr::EvalResult Eval;
    if (!Sub->isValueDependent() && Sub->EvaluateAsRValue(Eval, Ctx) &&
        Eval.Val.isFloat()) {
      llvm::APFloat Value = Eval.Val.getFloat();
      bool LosesInfo = false;
      Value.convert(Ctx.getFloatTypeSemantics(DstT),
                    llvm::APFloat::rmNearestTiesToEven, &LosesInfo);
      if (!LosesInfo)
        return;
    }
    diag(Loc, "implicit floating-point narrowing %0 -> %1 silently drops "
              "mantissa bits; cast explicitly or keep the wider type")
        << SrcT << DstT;
    return;
  }

  // CK_IntegralCast to a strictly narrower width.
  if (!Sub->isValueDependent()) {
    Expr::EvalResult Eval;
    if (Sub->EvaluateAsRValue(Eval, Ctx) && Eval.Val.isInt()) {
      const llvm::APSInt &Value = Eval.Val.getInt();
      const bool DstSigned = DstT->isSignedIntegerType();
      const bool Fits = DstSigned
                            ? Value.isSignedIntN(static_cast<unsigned>(DstBits))
                            : (!Value.isNegative() &&
                               Value.isIntN(static_cast<unsigned>(DstBits)));
      if (Fits)
        return;  // value-preserving constant narrowing
    }
  }
  diag(Loc, "implicit integral narrowing %0 -> %1 can change the value; "
            "cast explicitly after checking the range")
      << SrcT << DstT;
}

}  // namespace clang::tidy::dqn
