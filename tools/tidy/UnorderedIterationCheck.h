// dqn-unordered-iteration: range-for over std::unordered_{map,multimap,set,
// multiset} whose body is order-sensitive — it accumulates with a compound
// assignment (floating-point accumulation is the canonical determinism
// hazard), emits stream output, appends to an outside container, or binds
// the element by non-const reference. Hash-table iteration order is
// load-factor- and libstdc++-version-dependent, so any of these leaks
// nondeterminism into results.
//
// A loop is silenced only by a `// dqn-order-insensitive: <rationale>`
// annotation on the loop line or in the contiguous comment block directly
// above it; the annotation without a rationale is itself a finding. The
// sanctioned structural fix is util::keyed_vector (src/util/keyed_vector.hpp)
// or iterating a sorted copy of the keys.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::dqn {

class UnorderedIterationCheck : public ClangTidyCheck {
 public:
  UnorderedIterationCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::dqn
