// dqn-atomic-order: every std::atomic access must state its memory order
// explicitly. Defaulted seq_cst hides the synchronization design decision —
// the repo's lock-free paths (obs shards, gemm backend slot, contract
// counters) are all deliberately relaxed or acquire/release, so an implicit
// order is either an unreviewed fence or an accidental one.
//
// Semantic upgrades over the ast_lint.py textual floor:
//   * member calls whose memory_order argument is a CXXDefaultArgExpr are
//     caught even when the call is spelled through references, typedefs, or
//     template aliases the greppable rule cannot resolve;
//   * operator sugar (`++ctr`, `flag = true`, `x += 2`) and implicit
//     conversions (`if (flag)`) are diagnosed — they are always seq_cst and
//     have no spelling that could carry an order.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::dqn {

class AtomicOrderCheck : public ClangTidyCheck {
 public:
  AtomicOrderCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::dqn
