// dqn-hot-path-alloc: no allocation and no string-keyed observability inside
// functions annotated DQN_HOT_PATH (__attribute__((annotate("dqn::hot_path")))).
//
// Semantic upgrades over the scripts/ast_lint.py textual floor:
//   * sees through template aliases (`using buffer_t = std::vector<double>`:
//     constructing a buffer_t allocates, with no growth call to grep for);
//   * catches implicit std::string temporaries (a `const char*` passed where
//     a std::string parameter is expected);
//   * recurses one level into helpers whose bodies are visible in the TU, so
//     an allocation cannot hide behind a thin inline wrapper.
//
// DQN_* contract macros (DQN_ENSURE, DQN_INVARIANT, ...) are exempt: their
// failure paths allocate by design and are cold.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::dqn {

class HotPathAllocCheck : public ClangTidyCheck {
 public:
  HotPathAllocCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::dqn
